// Pins the DESIGN.md §7.4 threshold-selection contract: the selection
// kernel (nth_element + sorted-prefix extension, seeded from
// Scheme::min_arrivals_hint) is *bit-identical* to the full-sort
// reference across every scheme, drop rate, and latency-model family —
// not statistically close, the same IterationReport bytes. The off
// position of KernelOptions::threshold_selection exists precisely to be
// this reference.
//
// Also pinned here:
//   * the min_arrivals_hint conformance contract — the hint must be a
//     provable lower bound on offers-to-ready under ANY arrival order,
//     or selection would sort too little and change results;
//   * BatchedKernel == per-cell simulate_run, field for field, across
//     mixed schemes / seeds / clusters / trace settings;
//   * the heavy-drop edge where fewer arrivals survive than the start
//     prefix wants (the full-sort fallback branch).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "core/core.hpp"
#include "simulate/simulate.hpp"
#include "stats/rng.hpp"

namespace coupon::simulate {
namespace {

constexpr const char* kAllSchemes[] = {"uncoded", "fr",  "cr",
                                       "bcc",     "simple_random",
                                       "gc_cyclic", "sgc", "gc_nested"};

ClusterConfig selection_cluster(double drop_probability) {
  ClusterConfig c;
  c.compute_shift = 1e-3;
  c.compute_straggle = 50.0;
  c.unit_transfer_seconds = 2e-3;
  c.broadcast_seconds = 1e-4;
  c.drop_probability = drop_probability;
  return c;
}

struct ModelKind {
  const char* name;
  LatencyModelFactory factory;  // empty = default shifted-exp
};

std::vector<ModelKind> model_kinds() {
  std::vector<ModelKind> kinds;
  kinds.push_back({"shifted_exp", {}});
  kinds.push_back({"pareto", [](std::size_t) {
                     return std::make_unique<ParetoModel>(1e-3, 1.5);
                   }});
  kinds.push_back({"markov", [](std::size_t n) {
                     return std::make_unique<MarkovStragglerModel>(
                         n, 1e-3, 50.0, 5.0, 0.1, 0.3);
                   }});
  return kinds;
}

std::unique_ptr<core::Scheme> build_scheme(const char* name,
                                           std::uint64_t seed) {
  core::SchemeConfig config;
  config.num_workers = 48;
  config.num_units = 48;
  config.load = 4;
  stats::Rng build_rng(seed);
  return core::SchemeRegistry::instance().create(name, config, build_rng);
}

void expect_reports_equal(const IterationReport& sel,
                          const IterationReport& ref,
                          const std::string& label) {
  EXPECT_EQ(sel.total_time, ref.total_time) << label;
  EXPECT_EQ(sel.compute_time, ref.compute_time) << label;
  EXPECT_EQ(sel.comm_time, ref.comm_time) << label;
  EXPECT_EQ(sel.workers_heard, ref.workers_heard) << label;
  EXPECT_EQ(sel.units_received, ref.units_received) << label;
  EXPECT_EQ(sel.recovered, ref.recovered) << label;
}

/// Runs `iterations` iterations through a selection kernel and a
/// full-sort reference kernel fed identical RNG streams and fresh
/// identically-parameterized models, requiring exact equality per
/// iteration. Returns how many iterations failed to recover (so callers
/// can assert an edge path was actually exercised).
std::size_t expect_selection_equivalent(const core::Scheme& scheme,
                                        const ClusterConfig& cluster,
                                        std::size_t iterations,
                                        const std::string& label) {
  IterationKernel selected(scheme, cluster);
  IterationKernel reference(scheme, cluster,
                            KernelOptions{.threshold_selection = false});
  EXPECT_EQ(reference.start_prefix(), scheme.num_workers()) << label;
  const auto model_a = make_latency_model(cluster, scheme.num_workers());
  const auto model_b = make_latency_model(cluster, scheme.num_workers());
  stats::Rng rng_a(0xD15EA5E);
  stats::Rng rng_b(0xD15EA5E);
  std::size_t failures = 0;
  for (std::size_t t = 0; t < iterations; ++t) {
    const IterationReport sel = selected.run(*model_a, t, rng_a);
    const IterationReport ref = reference.run(*model_b, t, rng_b);
    expect_reports_equal(sel, ref, label + " iteration " + std::to_string(t));
    failures += ref.recovered ? 0 : 1;
  }
  return failures;
}

TEST(ThresholdSelection, BitIdenticalAcrossSchemesDropsAndModels) {
  for (const char* name : kAllSchemes) {
    const auto scheme = build_scheme(name, 0x5E1EC7);
    for (double drop : {0.0, 0.05, 0.4}) {
      for (const ModelKind& kind : model_kinds()) {
        ClusterConfig cluster = selection_cluster(drop);
        cluster.latency_model = kind.factory;
        expect_selection_equivalent(
            *scheme, cluster, /*iterations=*/200,
            std::string(name) + " drop=" + std::to_string(drop) + " " +
                kind.name);
      }
    }
  }
}

TEST(ThresholdSelection, SelectionIsActuallyEngagedWhereItCanBe) {
  // Guard against the trivial pass where start_prefix silently equals n
  // everywhere (the equivalence test would still hold, vacuously). The
  // threshold/coverage schemes must start below n; wait-for-all must not.
  const ClusterConfig cluster = selection_cluster(0.0);
  for (const char* name : {"cr", "bcc", "fr", "simple_random", "gc_cyclic",
                           "sgc", "gc_nested"}) {
    const auto scheme = build_scheme(name, 0xB1A5ED);
    IterationKernel kernel(*scheme, cluster);
    EXPECT_LT(kernel.start_prefix(), scheme->num_workers()) << name;
    EXPECT_GE(kernel.start_prefix(), scheme->min_arrivals_hint()) << name;
  }
  const auto uncoded = build_scheme("uncoded", 0xB1A5ED);
  EXPECT_EQ(IterationKernel(*uncoded, cluster).start_prefix(),
            uncoded->num_workers());
}

TEST(ThresholdSelection, MinArrivalsHintLowerBoundsOffersToReady) {
  // The selection kernel is only correct if no collector can become
  // ready before min_arrivals_hint() offers — under ANY arrival order,
  // since latency models reorder workers arbitrarily. Random
  // permutations probe that contract for every scheme.
  stats::Rng perm_rng(0xC0FFEE);
  for (const char* name : kAllSchemes) {
    const auto scheme = build_scheme(name, 0x0FFE6);
    const std::size_t hint = scheme->min_arrivals_hint();
    ASSERT_GE(hint, 1u) << name;
    ASSERT_LE(hint, scheme->num_workers()) << name;
    std::vector<std::size_t> order(scheme->num_workers());
    std::iota(order.begin(), order.end(), 0);
    const auto collector = scheme->make_collector();
    for (int trial = 0; trial < 50; ++trial) {
      perm_rng.shuffle(order);
      collector->reset();
      std::size_t offers = 0;
      for (std::size_t worker : order) {
        if (collector->ready()) {
          break;
        }
        collector->offer(worker, scheme->message_meta(worker), {});
        ++offers;
      }
      // A randomized placement may legitimately fail coverage even after
      // all n offers (BCC/simple_random); the bound claim is about
      // recoveries only — and offers == n >= hint holds there anyway.
      EXPECT_GE(offers, hint) << name << " trial " << trial;
    }
  }
}

TEST(ThresholdSelection, HeavyDropsFallBackToFullSortBitIdentically) {
  // At 95% drops almost every iteration has fewer surviving arrivals
  // than the start prefix wants — the scan must take the sort-everything
  // branch and report the failure exactly as the reference does.
  const auto scheme = build_scheme("bcc", 0xD20B);
  const std::size_t failures = expect_selection_equivalent(
      *scheme, selection_cluster(0.95), /*iterations=*/300, "bcc drop=0.95");
  EXPECT_GT(failures, 250u);  // the edge path is actually the common path
}

TEST(BatchedKernel, MatchesPerCellSimulateRunExactly) {
  // Mixed schemes, seeds, clusters, and trace settings in one batch; the
  // sequential reference replays each cell's exact RNG protocol (build
  // consumes the seed-fresh stream, the run continues it).
  struct Spec {
    const char* scheme;
    std::uint64_t seed;
    double drop;
    bool trace;
  };
  const std::vector<Spec> specs = {{"bcc", 101, 0.0, false},
                                   {"fr", 202, 0.1, false},
                                   {"uncoded", 303, 0.0, true},
                                   {"gc_cyclic", 404, 0.3, false},
                                   {"bcc", 505, 0.5, true},
                                   {"simple_random", 606, 0.0, false}};

  std::vector<std::unique_ptr<core::Scheme>> schemes;
  std::vector<ClusterConfig> clusters;
  std::vector<RunReport> expected;
  std::vector<BatchedCell> cells;
  clusters.reserve(specs.size());  // cells hold pointers into this
  for (const Spec& spec : specs) {
    stats::Rng rng(spec.seed);
    core::SchemeConfig config;
    config.num_workers = 48;
    config.num_units = 48;
    config.load = 4;
    schemes.push_back(
        core::SchemeRegistry::instance().create(spec.scheme, config, rng));
    clusters.push_back(selection_cluster(spec.drop));

    RunOptions options;
    options.iterations = 60;
    options.record_trace = spec.trace;

    BatchedCell cell;
    cell.scheme = schemes.back().get();
    cell.config = &clusters.back();
    cell.rng = rng;  // post-build copy: exactly where simulate_run starts
    cell.options = options;
    cells.push_back(cell);

    expected.push_back(
        simulate_run(*schemes.back(), clusters.back(), options, rng));
  }

  BatchedKernel kernel(std::move(cells));
  ASSERT_EQ(kernel.num_cells(), specs.size());
  const std::vector<RunReport> actual = kernel.run();
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t c = 0; c < actual.size(); ++c) {
    const std::string label =
        std::string(specs[c].scheme) + " cell " + std::to_string(c);
    EXPECT_EQ(actual[c].total_time, expected[c].total_time) << label;
    EXPECT_EQ(actual[c].total_compute_time, expected[c].total_compute_time)
        << label;
    EXPECT_EQ(actual[c].total_comm_time, expected[c].total_comm_time) << label;
    EXPECT_EQ(actual[c].failures, expected[c].failures) << label;
    EXPECT_EQ(actual[c].workers_heard.count(), expected[c].workers_heard.count())
        << label;
    EXPECT_EQ(actual[c].workers_heard.mean(), expected[c].workers_heard.mean())
        << label;
    EXPECT_EQ(actual[c].workers_heard.min(), expected[c].workers_heard.min())
        << label;
    EXPECT_EQ(actual[c].workers_heard.max(), expected[c].workers_heard.max())
        << label;
    EXPECT_EQ(actual[c].units_received.mean(), expected[c].units_received.mean())
        << label;
    ASSERT_EQ(actual[c].iterations.size(), expected[c].iterations.size())
        << label;
    for (std::size_t t = 0; t < actual[c].iterations.size(); ++t) {
      expect_reports_equal(actual[c].iterations[t], expected[c].iterations[t],
                           label + " iteration " + std::to_string(t));
    }
  }
}

TEST(BatchedKernel, SingleCellDegeneratesToSimulateRun) {
  stats::Rng rng(0xABCDEF);
  core::SchemeConfig config;
  config.num_workers = 32;
  config.num_units = 32;
  config.load = 4;
  const auto scheme =
      core::SchemeRegistry::instance().create("bcc", config, rng);
  const ClusterConfig cluster = selection_cluster(0.05);

  RunOptions options;
  options.iterations = 40;
  options.record_trace = false;

  BatchedCell cell;
  cell.scheme = scheme.get();
  cell.config = &cluster;
  cell.rng = rng;
  cell.options = options;

  const RunReport expected = simulate_run(*scheme, cluster, options, rng);
  std::vector<BatchedCell> cells;
  cells.push_back(cell);
  const std::vector<RunReport> actual = BatchedKernel(std::move(cells)).run();
  ASSERT_EQ(actual.size(), 1u);
  EXPECT_EQ(actual[0].total_time, expected.total_time);
  EXPECT_EQ(actual[0].failures, expected.failures);
  EXPECT_EQ(actual[0].workers_heard.mean(), expected.workers_heard.mean());
}

}  // namespace
}  // namespace coupon::simulate
