// Tests for the SweepPlan API: cartesian expansion order, up-front name
// validation, parallel == serial bit-identical output, streaming sink
// ordering, and the partial-decode failure policy exercised end-to-end
// through the unified Runtime interface.

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "driver/driver.hpp"
#include "driver/sweep.hpp"

namespace driver = coupon::driver;

namespace {

driver::SweepPlan small_plan() {
  driver::SweepPlan plan;
  plan.base.num_workers = 10;
  plan.base.num_units = 10;
  plan.base.iterations = 5;
  plan.base.seed = 77;
  plan.schemes = {"bcc", "cr"};
  plan.scenarios = {"shifted_exp", "lossy"};
  plan.loads = {2, 5};
  return plan;
}

std::string summary_csv(const std::vector<driver::RunRecord>& records) {
  std::ostringstream os;
  driver::CsvSummarySink sink(os);
  for (const auto& record : records) {
    sink.write(record);
  }
  return os.str();
}

}  // namespace

TEST(SweepPlan, ExpandsTheCartesianProductInDeterministicOrder) {
  const auto cells = driver::expand_plan(small_plan());
  ASSERT_EQ(cells.size(), 8u);  // 2 schemes x 2 scenarios x 2 loads
  // Nesting order: scheme (outermost), scenario, load (innermost).
  EXPECT_EQ(cells[0].config.scheme, "bcc");
  EXPECT_EQ(cells[0].config.scenario, "shifted_exp");
  EXPECT_EQ(cells[0].config.load, 2u);
  EXPECT_EQ(cells[1].config.load, 5u);
  EXPECT_EQ(cells[2].config.scenario, "lossy");
  EXPECT_EQ(cells[4].config.scheme, "cr");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(cells[i].index, i);
    // Non-swept fields come from the base template.
    EXPECT_EQ(cells[i].config.num_workers, 10u);
    EXPECT_EQ(cells[i].config.seed, 77u);
  }
}

TEST(SweepPlan, EmptyAxesFallBackToTheBaseConfig) {
  driver::SweepPlan plan;
  plan.base.scheme = "uncoded";
  plan.base.scenario = "no_stragglers";
  const auto cells = driver::expand_plan(plan);
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].config.scheme, "uncoded");
  EXPECT_EQ(cells[0].config.scenario, "no_stragglers");
}

TEST(SweepPlan, UnitsAxisTracksWorkersByDefault) {
  driver::SweepPlan plan;
  plan.workers = {10, 20};
  const auto cells = driver::expand_plan(plan);
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0].config.num_units, 10u);
  EXPECT_EQ(cells[1].config.num_units, 20u);

  plan.units = {40};  // explicit axis decouples m from n
  const auto decoupled = driver::expand_plan(plan);
  ASSERT_EQ(decoupled.size(), 2u);
  EXPECT_EQ(decoupled[0].config.num_units, 40u);
  EXPECT_EQ(decoupled[1].config.num_units, 40u);
}

TEST(SweepPlan, UnknownNamesRejectedBeforeAnyCellRuns) {
  auto plan = small_plan();
  plan.schemes.push_back("bogus_scheme");
  try {
    driver::expand_plan(plan);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("uncoded"), std::string::npos);
  }

  plan = small_plan();
  plan.scenarios.push_back("bogus_scenario");
  EXPECT_THROW(driver::expand_plan(plan), std::invalid_argument);

  plan = small_plan();
  plan.base.runtime = "mpi";
  EXPECT_THROW(driver::expand_plan(plan), std::invalid_argument);
}

TEST(SweepPlan, CapabilityViolationsRejectedBeforeAnyCellRuns) {
  // CR requires m == n: a decoupled units axis must fail at expansion
  // time, not as an assertion halfway through the sweep.
  driver::SweepPlan plan;
  plan.schemes = {"cr", "bcc"};
  plan.workers = {50};
  plan.units = {20};
  EXPECT_THROW(driver::expand_plan(plan), std::invalid_argument);

  // FR requires r | n.
  plan = driver::SweepPlan{};
  plan.schemes = {"fr"};
  plan.workers = {10};
  plan.loads = {3};
  EXPECT_THROW(driver::expand_plan(plan), std::invalid_argument);
  plan.loads = {2};  // divides: fine
  EXPECT_EQ(driver::expand_plan(plan).size(), 1u);

  // Sim-only scenarios and cluster overrides are rejected up front under
  // the threaded runtime.
  plan = driver::SweepPlan{};
  plan.base.runtime = "threaded";
  plan.scenarios = {"no_stragglers", "hetero"};
  EXPECT_THROW(driver::expand_plan(plan), std::invalid_argument);

  plan = driver::SweepPlan{};
  plan.base.runtime = "threaded";
  plan.base.cluster_override =
      std::make_shared<const coupon::simulate::ClusterConfig>(
          coupon::simulate::ec2_cluster());
  EXPECT_THROW(driver::expand_plan(plan), std::invalid_argument);
}

TEST(SweepPlan, ParallelSweepIsBitIdenticalToSerial) {
  const auto plan = small_plan();

  std::ostringstream serial_csv_os, parallel_csv_os;
  driver::CsvSummarySink serial_sink(serial_csv_os);
  driver::CsvSummarySink parallel_sink(parallel_csv_os);

  driver::SweepOptions serial;
  serial.threads = 1;
  serial.sink = &serial_sink;
  const auto serial_records = driver::run_sweep(plan, serial);

  driver::SweepOptions parallel;
  parallel.threads = 4;
  parallel.sink = &parallel_sink;
  const auto parallel_records = driver::run_sweep(plan, parallel);

  // Streamed output and collected records agree byte-for-byte.
  ASSERT_EQ(serial_records.size(), parallel_records.size());
  EXPECT_EQ(serial_csv_os.str(), parallel_csv_os.str());
  EXPECT_EQ(summary_csv(serial_records), summary_csv(parallel_records));

  // The per-iteration traces match too, not just the summaries.
  std::ostringstream serial_trace, parallel_trace;
  driver::CsvTraceSink a(serial_trace), b(parallel_trace);
  for (const auto& record : serial_records) {
    a.write(record);
  }
  for (const auto& record : parallel_records) {
    b.write(record);
  }
  EXPECT_EQ(serial_trace.str(), parallel_trace.str());
}

TEST(SweepPlan, EveryCellMatchesAStandaloneRun) {
  // A sweep cell is exactly run_experiment of its resolved config: any
  // CSV row reproduces as a single coupon_run invocation.
  const auto plan = small_plan();
  const auto cells = driver::expand_plan(plan);
  const auto records = driver::run_sweep(plan);
  ASSERT_EQ(records.size(), cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const auto standalone = driver::run_experiment(cells[i].config);
    EXPECT_EQ(summary_csv({records[i]}), summary_csv({standalone})) << i;
  }
}

TEST(SweepPlan, JsonlSinkEmitsOneLinePerCell) {
  const auto plan = small_plan();
  std::ostringstream os;
  driver::JsonlSink sink(os);
  driver::SweepOptions options;
  options.sink = &sink;
  const auto records = driver::run_sweep(plan, options);
  std::size_t lines = 0;
  for (char c : os.str()) {
    lines += c == '\n';
  }
  EXPECT_EQ(lines, records.size());
}

TEST(SweepPlan, SeedAxisGivesEachCellItsOwnStream) {
  driver::SweepPlan plan;
  plan.base.num_workers = 10;
  plan.base.num_units = 10;
  plan.base.load = 2;
  plan.base.iterations = 4;
  plan.seeds = {1, 2, 3};
  const auto records = driver::run_sweep(plan);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].seed, 1u);
  EXPECT_EQ(records[2].seed, 3u);
  // Different seeds, different realized traces.
  EXPECT_NE(summary_csv({records[0]}), summary_csv({records[1]}));
}

// --- FailurePolicy::kApplyPartial end-to-end through Runtime ------------

namespace {

/// A 2-worker / 2-batch BCC cell with fully random batch choice: the two
/// workers collide on one batch with probability 1/2 per seed, making
/// full coverage impossible — the scenario kApplyPartial exists for.
driver::ExperimentConfig colliding_bcc_config(std::uint64_t seed) {
  driver::ExperimentConfig config;
  config.scheme = "bcc";
  config.scenario = "no_stragglers";  // threaded-capable, no injected sleeps
  config.runtime = "threaded";
  config.num_workers = 2;
  config.num_units = 4;
  config.load = 2;  // B = 2 batches of 2 units
  config.iterations = 3;
  config.features = 4;
  config.examples_per_unit = 3;
  config.seed = seed;
  config.bcc_seed_first_batches = false;  // allow colliding placements
  return config;
}

}  // namespace

TEST(RuntimePolicy, ApplyPartialTrainsThroughCoverageFailures) {
  // Scan seeds for a colliding placement, then check both policies
  // end-to-end through the polymorphic Runtime interface.
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    auto config = colliding_bcc_config(seed);
    const auto skip = driver::run_experiment(config);
    if (skip.failures == 0) {
      continue;  // placement covered; try the next seed
    }
    // kSkipUpdate: every iteration failed, no partial updates.
    EXPECT_EQ(skip.failures, config.iterations);
    EXPECT_EQ(skip.partial_iterations, 0u);

    // kApplyPartial: the same cell applies a rescaled covered gradient
    // every iteration instead of freezing.
    config.on_failure = coupon::engine::FailurePolicy::kApplyPartial;
    const auto partial = driver::run_experiment(config);
    EXPECT_EQ(partial.partial_iterations, config.iterations);
    EXPECT_EQ(partial.failures, 0u);
    ASSERT_TRUE(partial.final_loss.has_value());
    ASSERT_TRUE(skip.final_loss.has_value());
    // Skipping every update leaves w = 0: loss stays at ln 2; the
    // partial updates actually move the model.
    EXPECT_NE(*partial.final_loss, *skip.final_loss);
    return;
  }
  FAIL() << "no colliding placement in 32 seeds (p ~ 2^-32)";
}

TEST(RuntimePolicy, ApplyPartialRunsThroughASweep) {
  // The policy is part of the sweep template: a whole seed axis runs
  // under kApplyPartial, and the record carries the partial counts.
  driver::SweepPlan plan;
  plan.base = colliding_bcc_config(0);
  plan.base.on_failure = coupon::engine::FailurePolicy::kApplyPartial;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    plan.seeds.push_back(seed);
  }
  const auto records = driver::run_sweep(plan);
  ASSERT_EQ(records.size(), 8u);
  for (const auto& record : records) {
    // Either the placement covered (normal updates) or every iteration
    // fell back to a partial update — never a frozen model.
    EXPECT_EQ(record.failures, 0u);
    EXPECT_TRUE(record.partial_iterations == 0 ||
                record.partial_iterations == plan.base.iterations);
  }
}
