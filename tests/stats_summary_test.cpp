// Tests for streaming statistics, quantiles, and histograms.

#include <gtest/gtest.h>

#include <cmath>

#include "stats/rng.hpp"
#include "stats/summary.hpp"
#include "util/assert.hpp"

namespace coupon::stats {
namespace {

TEST(OnlineStats, EmptyAccumulator) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.sem(), 0.0);
}

TEST(OnlineStats, SingleValue) {
  OnlineStats s;
  s.add(42.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 42.0);
  EXPECT_DOUBLE_EQ(s.max(), 42.0);
}

TEST(OnlineStats, MatchesDirectComputation) {
  OnlineStats s;
  const std::vector<double> xs = {1.0, 2.0, 4.0, 8.0, 16.0};
  double sum = 0.0;
  for (double x : xs) {
    s.add(x);
    sum += x;
  }
  const double mean = sum / 5.0;
  double ss = 0.0;
  for (double x : xs) {
    ss += (x - mean) * (x - mean);
  }
  EXPECT_NEAR(s.mean(), mean, 1e-12);
  EXPECT_NEAR(s.variance(), ss / 4.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 16.0);
  EXPECT_NEAR(s.sem(), s.stddev() / std::sqrt(5.0), 1e-12);
}

TEST(OnlineStats, MergeEqualsSinglePass) {
  Rng rng(3);
  OnlineStats whole, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(5.0, 2.0);
    whole.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(OnlineStats, MergeWithEmptyIsIdentity) {
  OnlineStats a, empty;
  a.add(1.0);
  a.add(3.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  OnlineStats b;
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.mean(), mean);
  EXPECT_EQ(b.count(), 2u);
}

TEST(OnlineStats, NumericallyStableForLargeOffsets) {
  OnlineStats s;
  const double offset = 1e9;
  for (int i = 0; i < 1000; ++i) {
    s.add(offset + (i % 2 == 0 ? 1.0 : -1.0));
  }
  EXPECT_NEAR(s.mean(), offset, 1e-3);
  EXPECT_NEAR(s.variance(), 1.0 + 1e-3, 2e-3);
}

TEST(Quantile, LinearInterpolation) {
  std::vector<double> xs = {10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 25.0);
  EXPECT_NEAR(quantile(xs, 1.0 / 3.0), 20.0, 1e-12);
}

TEST(Quantile, UnsortedInputIsHandled) {
  std::vector<double> xs = {40.0, 10.0, 30.0, 20.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 25.0);
}

TEST(Quantile, SingleElement) {
  EXPECT_DOUBLE_EQ(quantile({7.0}, 0.3), 7.0);
}

TEST(Quantile, RejectsEmptyAndBadQ) {
  EXPECT_THROW(quantile({}, 0.5), coupon::AssertionError);
  EXPECT_THROW(quantile({1.0}, -0.1), coupon::AssertionError);
  EXPECT_THROW(quantile({1.0}, 1.1), coupon::AssertionError);
}

TEST(Histogram, CountsAndEdges) {
  Histogram h(0.0, 10.0, 5);
  for (double x : {0.5, 1.5, 2.5, 9.5, 9.9}) {
    h.add(x);
  }
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.count(0), 2u);  // [0,2): 0.5, 1.5
  EXPECT_EQ(h.count(1), 1u);  // [2,4): 2.5
  EXPECT_EQ(h.count(4), 2u);  // [8,10): 9.5, 9.9
  EXPECT_DOUBLE_EQ(h.edge(0), 0.0);
  EXPECT_DOUBLE_EQ(h.edge(4), 8.0);
}

TEST(Histogram, OutOfRangeClampsToEndBuckets) {
  Histogram h(0.0, 1.0, 2);
  h.add(-5.0);
  h.add(5.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 1u);
}

TEST(Histogram, TailFraction) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 1; i <= 10; ++i) {
    h.add(static_cast<double>(i));
  }
  EXPECT_DOUBLE_EQ(h.tail_fraction(8.0), 0.3);   // 8, 9, 10
  EXPECT_DOUBLE_EQ(h.tail_fraction(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.tail_fraction(11.0), 0.0);
}

TEST(Histogram, RejectsDegenerateRange) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), coupon::AssertionError);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), coupon::AssertionError);
}

}  // namespace
}  // namespace coupon::stats
