// Tests for the shared TrainingEngine protocol layer (DESIGN.md §8):
// cross-runtime equivalence (simulated training == serial reference ==
// threaded runtime, bitwise where the decode is order-independent),
// timing composition (simulated training keeps the timing-only kernel's
// clock bit-for-bit), failure policies through the engine, and loss /
// time-to-target tracking.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/core.hpp"
#include "data/synthetic.hpp"
#include "engine/engine.hpp"
#include "linalg/vector_ops.hpp"
#include "opt/opt.hpp"
#include "runtime/runtime.hpp"
#include "simulate/cluster_sim.hpp"
#include "stats/rng.hpp"

namespace coupon::engine {
namespace {

constexpr std::size_t kFeatures = 6;
constexpr std::size_t kIterations = 8;

simulate::ClusterConfig calm_cluster() {
  simulate::ClusterConfig c;
  c.compute_shift = 1e-3;
  c.compute_straggle = 100.0;
  c.unit_transfer_seconds = 2e-3;
  return c;
}

struct Setup {
  data::SyntheticProblem problem;
  std::unique_ptr<core::PerExampleSource> source;
  std::unique_ptr<core::Scheme> scheme;
};

/// n = m workers/units so the uncoded split is one unit per worker —
/// the shape whose decode reproduces the reference oracle bit-for-bit.
Setup make_setup(const std::string& kind, std::size_t n = 8,
                 std::uint64_t seed = 3) {
  Setup s;
  stats::Rng rng(seed);
  data::SyntheticConfig dconf;
  dconf.num_features = kFeatures;
  s.problem = data::generate_logreg(n, dconf, rng);
  s.source = std::make_unique<core::PerExampleSource>(s.problem.dataset);
  core::SchemeConfig config{n, n, 2, true};
  // Random placements may miss a unit at small n; redraw until covered.
  for (int attempt = 0; attempt < 64; ++attempt) {
    s.scheme = core::SchemeRegistry::instance().create(kind, config, rng);
    if (s.scheme->placement().covers_all_examples()) {
      return s;
    }
  }
  ADD_FAILURE() << "no covering placement in 64 draws";
  return s;
}

std::vector<double> serial_reference(const core::UnitGradientSource& source,
                                     double lr = 0.5) {
  opt::NesterovGradient optimizer(kFeatures,
                                  opt::LearningRateSchedule::constant(lr));
  const auto oracle = reference_oracle(source);
  return opt::train(optimizer, oracle, kIterations).weights;
}

TrainReport train_simulated(const Setup& setup,
                            const simulate::ClusterConfig& cluster,
                            const TrainOptions& options,
                            std::uint64_t seed = 11, double lr = 0.5) {
  stats::Rng rng(seed);
  SimulatedProvider provider(*setup.scheme, *setup.source, cluster, rng);
  TrainingEngine protocol(*setup.scheme, *setup.source, provider);
  opt::NesterovGradient optimizer(kFeatures,
                                  opt::LearningRateSchedule::constant(lr));
  return protocol.train(optimizer, options);
}

// --- cross-runtime equivalence ------------------------------------------

TEST(EngineEquivalence, SimulatedTrainingMatchesSerialBitwise) {
  // One unit per worker, wait-for-all decode slotted per worker: the
  // distributed sum replays the reference oracle's exact floating-point
  // operation order, so the weights are EQUAL, not just close — under
  // any latency model, because uncoded waits for everyone.
  const auto setup = make_setup("uncoded");
  const auto expected = serial_reference(*setup.source);

  TrainOptions options;
  options.iterations = kIterations;
  const auto report = train_simulated(setup, calm_cluster(), options);
  EXPECT_EQ(report.failed_iterations, 0u);
  EXPECT_EQ(report.weights, expected);
}

TEST(EngineEquivalence, ThreadedRuntimeMatchesTheSameReferenceBitwise) {
  // Real threads deliver in scheduling-dependent order, but the uncoded
  // collector slots payloads per worker: the decode is arrival-order
  // independent and must hit the same bits as the serial reference (and
  // therefore as the simulated provider above).
  const auto setup = make_setup("uncoded");
  const auto expected = serial_reference(*setup.source);

  runtime::ThreadCluster cluster(*setup.scheme, *setup.source);
  opt::NesterovGradient optimizer(kFeatures,
                                  opt::LearningRateSchedule::constant(0.5));
  runtime::TrainOptions options;
  options.iterations = kIterations;
  const auto report = cluster.train(optimizer, options);
  EXPECT_EQ(report.failed_iterations, 0u);
  EXPECT_EQ(report.weights, expected);
}

TEST(EngineEquivalence, ThreadedWithStragglersStillMatchesBitwise) {
  // Injected straggler sleeps shuffle arrival order without touching the
  // math: still bitwise equal for the order-independent decode.
  const auto setup = make_setup("uncoded");
  const auto expected = serial_reference(*setup.source);

  runtime::ThreadCluster cluster(*setup.scheme, *setup.source);
  opt::NesterovGradient optimizer(kFeatures,
                                  opt::LearningRateSchedule::constant(0.5));
  runtime::TrainOptions options;
  options.iterations = kIterations;
  options.straggler.enabled = true;
  options.straggler.shift_ms_per_unit = 0.2;
  options.straggler.straggle = 2.0;
  const auto report = cluster.train(optimizer, options);
  EXPECT_EQ(report.weights, expected);
  EXPECT_GT(report.elapsed_seconds, 0.0);
}

TEST(EngineEquivalence, EverySchemeTrainsToTheSerialModelOnSimulatedTime) {
  // Coded decodes (CR) re-associate the sum, so the guarantee across all
  // schemes is tight-tolerance agreement, not bit equality.
  for (const char* kind : {"uncoded", "bcc", "simple_random", "cr", "fr"}) {
    const auto setup = make_setup(kind);
    const auto expected = serial_reference(*setup.source);
    TrainOptions options;
    options.iterations = kIterations;
    const auto report = train_simulated(setup, calm_cluster(), options);
    EXPECT_EQ(report.failed_iterations, 0u) << kind;
    ASSERT_EQ(report.weights.size(), expected.size());
    EXPECT_LT(linalg::max_abs_diff(report.weights, expected), 1e-7) << kind;
  }
}

TEST(EngineEquivalence, SimulatedTrainingIsDeterministicInSeed) {
  const auto setup_a = make_setup("bcc");
  const auto setup_b = make_setup("bcc");
  TrainOptions options;
  options.iterations = kIterations;
  const auto a = train_simulated(setup_a, calm_cluster(), options, 21);
  const auto b = train_simulated(setup_b, calm_cluster(), options, 21);
  EXPECT_EQ(a.weights, b.weights);
  EXPECT_DOUBLE_EQ(a.elapsed_seconds, b.elapsed_seconds);
}

// --- timing composes unchanged ------------------------------------------

TEST(EngineTiming, SimulatedTrainingClockMatchesTimingOnlyKernel) {
  // The provider replays the kernel's draw order and ingress recurrence:
  // the same (scheme, cluster, seed) must yield the same clock whether
  // gradients are computed or not — training adds weights to the record,
  // never perturbs the trace.
  const auto setup_train = make_setup("bcc", 12, 5);
  const auto setup_time = make_setup("bcc", 12, 5);
  const auto cluster = calm_cluster();

  TrainOptions options;
  options.iterations = 20;
  const auto trained = train_simulated(setup_train, cluster, options, 33);

  stats::Rng rng(33);
  simulate::RunOptions run_options;
  run_options.iterations = 20;
  const auto timed =
      simulate::simulate_run(*setup_time.scheme, cluster, run_options, rng);

  EXPECT_DOUBLE_EQ(trained.elapsed_seconds, timed.total_time);
  EXPECT_DOUBLE_EQ(trained.compute_seconds, timed.total_compute_time);
  EXPECT_DOUBLE_EQ(trained.comm_seconds, timed.total_comm_time);
  EXPECT_DOUBLE_EQ(trained.workers_heard.mean(), timed.workers_heard.mean());
  EXPECT_DOUBLE_EQ(trained.units_received.mean(),
                   timed.units_received.mean());
  EXPECT_EQ(trained.failed_iterations, timed.failures);
}

// --- failure policies through the engine --------------------------------

/// A 2-worker / 2-batch BCC setup whose random batch choices collide
/// (coverage impossible), found by scanning seeds.
struct CollidingSetup {
  data::SyntheticProblem problem;
  std::unique_ptr<core::PerExampleSource> source;
  std::unique_ptr<core::Scheme> scheme;
  bool found = false;
};

CollidingSetup make_colliding_bcc() {
  CollidingSetup s;
  data::SyntheticConfig dconf;
  dconf.num_features = kFeatures;
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    stats::Rng rng(seed);
    s.problem = data::generate_logreg(4, dconf, rng);
    s.source = std::make_unique<core::PerExampleSource>(s.problem.dataset);
    core::SchemeConfig config{2, 4, 2, false};  // B = 2, n = 2
    s.scheme = core::SchemeRegistry::instance().create("bcc", config, rng);
    if (!s.scheme->placement().covers_all_examples()) {
      s.found = true;
      return s;
    }
  }
  return s;
}

TEST(EngineFailurePolicy, SkipUpdateCountsFailuresAndFreezesTheModel) {
  const auto s = make_colliding_bcc();
  ASSERT_TRUE(s.found) << "no colliding placement in 64 seeds";

  stats::Rng rng(1);
  SimulatedProvider provider(*s.scheme, *s.source, calm_cluster(), rng);
  TrainingEngine protocol(*s.scheme, *s.source, provider);
  opt::GradientDescent optimizer(kFeatures,
                                 opt::LearningRateSchedule::constant(0.1));
  TrainOptions options;
  options.iterations = 3;
  const auto report = protocol.train(optimizer, options);
  EXPECT_EQ(report.failed_iterations, 3u);
  EXPECT_EQ(report.partial_iterations, 0u);
  EXPECT_EQ(report.weights, std::vector<double>(kFeatures, 0.0));
}

TEST(EngineFailurePolicy, ApplyPartialAppliesRescaledCoveredGradient) {
  const auto s = make_colliding_bcc();
  ASSERT_TRUE(s.found) << "no colliding placement in 64 seeds";
  const auto* bcc = dynamic_cast<const core::BccScheme*>(s.scheme.get());
  ASSERT_NE(bcc, nullptr);
  const std::size_t batch = bcc->batch_of_worker(0);

  stats::Rng rng(1);
  SimulatedProvider provider(*s.scheme, *s.source, calm_cluster(), rng);
  TrainingEngine protocol(*s.scheme, *s.source, provider);
  opt::GradientDescent optimizer(kFeatures,
                                 opt::LearningRateSchedule::constant(0.1));
  TrainOptions options;
  options.iterations = 1;
  options.on_failure = FailurePolicy::kApplyPartial;
  const auto report = protocol.train(optimizer, options);
  EXPECT_EQ(report.partial_iterations, 1u);
  EXPECT_EQ(report.failed_iterations, 0u);

  // Expected: one GD step with grad = batch_sum / (4 * 2/4) = sum/2.
  std::vector<double> batch_sum(kFeatures, 0.0);
  const std::vector<std::size_t> idx = {batch * 2, batch * 2 + 1};
  opt::partial_gradient_sum(s.problem.dataset, idx,
                            std::vector<double>(kFeatures, 0.0), batch_sum,
                            false);
  std::vector<double> expected(kFeatures);
  for (std::size_t c = 0; c < kFeatures; ++c) {
    expected[c] = -0.1 * batch_sum[c] / 2.0;
  }
  EXPECT_LT(linalg::max_abs_diff(report.weights, expected), 1e-12);
}

TEST(EngineFailurePolicy, TotalMessageLossFailsEveryIteration) {
  const auto setup = make_setup("uncoded");
  auto cluster = calm_cluster();
  cluster.drop_probability = 1.0;  // every message lost, every iteration
  TrainOptions options;
  options.iterations = 4;
  const auto report = train_simulated(setup, cluster, options);
  EXPECT_EQ(report.failed_iterations, 4u);
  EXPECT_EQ(report.weights, std::vector<double>(kFeatures, 0.0));
  EXPECT_DOUBLE_EQ(report.elapsed_seconds, 0.0);  // nothing ever arrived
}

// --- loss tracking and time-to-target -----------------------------------

TEST(EngineLoss, HistoryIsStampedWithMonotonicSimulatedSeconds) {
  const auto setup = make_setup("bcc");
  TrainOptions options;
  options.iterations = kIterations;
  const data::Dataset* dataset = &setup.problem.dataset;
  options.loss_fn = [dataset](std::span<const double> w) {
    return opt::logistic_loss(*dataset, w);
  };
  options.record_loss_history = true;
  const auto report = train_simulated(setup, calm_cluster(), options);

  ASSERT_EQ(report.loss_history.size(), kIterations);
  for (std::size_t t = 1; t < report.loss_history.size(); ++t) {
    EXPECT_GT(report.loss_history[t].seconds,
              report.loss_history[t - 1].seconds);
  }
  EXPECT_DOUBLE_EQ(report.loss_history.back().seconds,
                   report.elapsed_seconds);
  ASSERT_TRUE(report.final_loss.has_value());
  EXPECT_DOUBLE_EQ(*report.final_loss, report.loss_history.back().loss);
  // Training made progress from w = 0.
  const double initial = opt::logistic_loss(
      setup.problem.dataset, std::vector<double>(kFeatures, 0.0));
  EXPECT_LT(*report.final_loss, initial);
}

TEST(EngineLoss, TimeToTargetIsReportedAndStopAtTargetStopsEarly) {
  const auto setup = make_setup("uncoded");
  const data::Dataset* dataset = &setup.problem.dataset;
  const double initial = opt::logistic_loss(
      setup.problem.dataset, std::vector<double>(kFeatures, 0.0));

  TrainOptions options;
  options.iterations = 50;
  options.loss_fn = [dataset](std::span<const double> w) {
    return opt::logistic_loss(*dataset, w);
  };
  options.target_loss = 0.95 * initial;  // reachable within a few steps
  const auto full = train_simulated(setup, calm_cluster(), options);
  ASSERT_TRUE(full.time_to_target.has_value());
  EXPECT_GT(*full.time_to_target, 0.0);
  EXPECT_LE(*full.time_to_target, full.elapsed_seconds);
  EXPECT_EQ(full.iterations_run, 50u);

  const auto setup_again = make_setup("uncoded");
  options.stop_at_target = true;
  const auto stopped = train_simulated(setup_again, calm_cluster(), options);
  ASSERT_TRUE(stopped.time_to_target.has_value());
  EXPECT_LT(stopped.iterations_run, 50u);
  EXPECT_DOUBLE_EQ(*stopped.time_to_target, stopped.elapsed_seconds);
  EXPECT_DOUBLE_EQ(*stopped.time_to_target, *full.time_to_target);
}

TEST(EngineLoss, ReferenceOracleMatchesFullGradientClosely) {
  // Sanity: the blocked reference oracle computes the same mean gradient
  // as the direct full-dataset formula (it differs only in association).
  const auto setup = make_setup("uncoded");
  const auto oracle = reference_oracle(*setup.source);
  std::vector<double> w(kFeatures, 0.25), blocked(kFeatures), full(kFeatures);
  oracle(w, blocked);
  opt::logistic_gradient(setup.problem.dataset, w, full);
  EXPECT_LT(linalg::max_abs_diff(blocked, full), 1e-12);
}

}  // namespace
}  // namespace coupon::engine
