// Tests for the heterogeneous extension (Section IV): the Eq. 15 model,
// T-hat and its Lemma 1 monotonicity, the P2 load allocator, the LB
// baseline, and the Theorem 2 sandwich on the Fig. 5 configuration.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/hetero.hpp"
#include "core/theory.hpp"
#include "stats/rng.hpp"
#include "stats/summary.hpp"
#include "util/assert.hpp"

namespace coupon::core::hetero {
namespace {

std::vector<WorkerProfile> fig5_cluster() {
  // 95 slow workers (mu = 1) + 5 fast workers (mu = 20), a_i = 20.
  std::vector<WorkerProfile> workers(100);
  for (std::size_t i = 0; i < 100; ++i) {
    workers[i] = {20.0, i < 95 ? 1.0 : 20.0};
  }
  return workers;
}

TEST(SampleCompletionTimes, RespectsFloorAndZeroLoad) {
  stats::Rng rng(1);
  const std::vector<WorkerProfile> workers = {{2.0, 1.0}, {3.0, 5.0}};
  const std::vector<std::size_t> loads = {4, 0};
  for (int trial = 0; trial < 100; ++trial) {
    const auto times = sample_completion_times(workers, loads, rng);
    EXPECT_GE(times[0], 8.0);  // a * r = 2 * 4
    EXPECT_EQ(times[1], kInf);
  }
}

TEST(THat, HandComputedCases) {
  const std::vector<std::size_t> loads = {2, 3};
  const std::vector<double> times = {5.0, 3.0};
  EXPECT_DOUBLE_EQ(t_hat(times, loads, 1), 3.0);
  EXPECT_DOUBLE_EQ(t_hat(times, loads, 3), 3.0);
  EXPECT_DOUBLE_EQ(t_hat(times, loads, 4), 5.0);
  EXPECT_DOUBLE_EQ(t_hat(times, loads, 5), 5.0);
  EXPECT_EQ(t_hat(times, loads, 6), kInf);
}

TEST(THat, InfiniteTimesAreNeverCounted) {
  const std::vector<std::size_t> loads = {5, 5};
  const std::vector<double> times = {kInf, 2.0};
  EXPECT_DOUBLE_EQ(t_hat(times, loads, 5), 2.0);
  EXPECT_EQ(t_hat(times, loads, 6), kInf);
}

TEST(THat, Lemma1MonotonicityProperty) {
  // For any placement and any latency realization, s1 <= s2 implies
  // T-hat(s1) <= T-hat(s2) — Lemma 1 of the paper.
  stats::Rng rng(2);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = 2 + rng.uniform_int(10);
    std::vector<WorkerProfile> workers(n);
    std::vector<std::size_t> loads(n);
    std::size_t total = 0;
    for (std::size_t i = 0; i < n; ++i) {
      workers[i] = {rng.uniform(0.0, 5.0), rng.uniform(0.1, 10.0)};
      loads[i] = rng.uniform_int(1, 8);
      total += loads[i];
    }
    const auto times = sample_completion_times(workers, loads, rng);
    double prev = 0.0;
    for (std::size_t s = 1; s <= total; ++s) {
      const double cur = t_hat(times, loads, s);
      EXPECT_GE(cur, prev);
      prev = cur;
    }
  }
}

TEST(McExpectedTHat, ApproachesAnalyticSingleWorkerMean) {
  // One worker with load r: T-hat(r) == its completion time, whose mean
  // is a*r + r/mu.
  stats::Rng rng(3);
  const std::vector<WorkerProfile> workers = {{2.0, 4.0}};
  const std::vector<std::size_t> loads = {6};
  const double mc = mc_expected_t_hat(workers, loads, 6, 40000, rng);
  EXPECT_NEAR(mc, 2.0 * 6.0 + 6.0 / 4.0, 0.05);
}

TEST(OptimalNormalizedDeadline, SatisfiesTheRootEquation) {
  for (const WorkerProfile& w :
       {WorkerProfile{20.0, 1.0}, WorkerProfile{20.0, 20.0},
        WorkerProfile{1.0, 0.5}, WorkerProfile{0.1, 3.0}}) {
    const double u = optimal_normalized_deadline(w);
    EXPECT_GT(u, w.shift);
    const double g = std::exp(w.straggle * (u - w.shift)) - 1.0 -
                     w.straggle * u;
    EXPECT_NEAR(g, 0.0, 1e-6 * (1.0 + w.straggle * u));
  }
}

TEST(OptimalNormalizedDeadline, PaperParametersLandNearKnownValues) {
  // mu = 1, a = 20: u - 20 = log(1 + u) -> u ~ 23.19;
  // mu = 20, a = 20: u - 20 = log(1 + 20u)/20 -> u ~ 20.3.
  EXPECT_NEAR(optimal_normalized_deadline({20.0, 1.0}), 23.19, 0.05);
  EXPECT_NEAR(optimal_normalized_deadline({20.0, 20.0}), 20.30, 0.05);
}

TEST(OptimalNormalizedDeadline, ZeroShiftSignalsCapSaturation) {
  EXPECT_DOUBLE_EQ(optimal_normalized_deadline({0.0, 2.0}), 0.0);
}

TEST(AllocateLoads, MeetsTargetAndRespectsCap) {
  const auto workers = fig5_cluster();
  const std::size_t m = 500;
  const auto s =
      static_cast<std::size_t>(std::floor(m * std::log(double(m))));
  const auto alloc = allocate_loads(workers, s, m);
  ASSERT_EQ(alloc.loads.size(), workers.size());
  std::size_t total = 0;
  for (std::size_t l : alloc.loads) {
    EXPECT_LE(l, m);
    total += l;
  }
  EXPECT_GE(total, s);
  EXPECT_GT(alloc.deadline, 0.0);
  EXPECT_GE(alloc.expected_units, 0.9 * static_cast<double>(s));
}

TEST(AllocateLoads, FasterWorkersGetWeaklyMoreLoad) {
  const auto workers = fig5_cluster();
  const auto alloc = allocate_loads(workers, 3000, 500);
  // All slow workers share one load value, all fast another, fast >= slow.
  for (std::size_t i = 1; i < 95; ++i) {
    EXPECT_EQ(alloc.loads[i], alloc.loads[0]);
  }
  for (std::size_t i = 96; i < 100; ++i) {
    EXPECT_EQ(alloc.loads[i], alloc.loads[95]);
  }
  EXPECT_GE(alloc.loads[95], alloc.loads[0]);
}

TEST(AllocateLoads, InfeasibleTargetAsserts) {
  const std::vector<WorkerProfile> workers = {{1.0, 1.0}};
  EXPECT_THROW(allocate_loads(workers, 100, 10), coupon::AssertionError);
}

TEST(LoadBalanced, SumsToMAndTracksSpeed) {
  const auto workers = fig5_cluster();
  const auto loads = load_balanced_assignment(workers, 500);
  EXPECT_EQ(std::accumulate(loads.begin(), loads.end(), std::size_t{0}),
            500u);
  // mu-proportional: slow ~ 500/195 ~ 2.56, fast ~ 51.3.
  for (std::size_t i = 0; i < 95; ++i) {
    EXPECT_GE(loads[i], 2u);
    EXPECT_LE(loads[i], 3u);
  }
  for (std::size_t i = 95; i < 100; ++i) {
    EXPECT_GE(loads[i], 51u);
    EXPECT_LE(loads[i], 52u);
  }
}

TEST(LoadBalanced, UniformClusterGetsEvenSplit) {
  const std::vector<WorkerProfile> workers(4, WorkerProfile{1.0, 2.0});
  const auto loads = load_balanced_assignment(workers, 10);
  EXPECT_EQ(std::accumulate(loads.begin(), loads.end(), std::size_t{0}),
            10u);
  for (std::size_t l : loads) {
    EXPECT_GE(l, 2u);
    EXPECT_LE(l, 3u);
  }
}

TEST(SimulateGeneralizedBcc, FullReplicationCoversWithOneWorker) {
  stats::Rng rng(5);
  const std::vector<WorkerProfile> workers = {{1.0, 1.0}, {1.0, 1.0}};
  const std::vector<std::size_t> loads = {10, 10};
  const auto real = simulate_generalized_bcc(workers, loads, 10, rng);
  EXPECT_TRUE(real.covered);
  EXPECT_EQ(real.workers_heard, 1u);
  EXPECT_GE(real.time, 10.0);  // a * r floor
}

TEST(SimulateLoadBalanced, TimeIsMaxOverLoadedWorkers) {
  stats::Rng rng(6);
  const std::vector<WorkerProfile> workers = {{1.0, 1.0}, {5.0, 1.0},
                                              {1.0, 1.0}};
  const std::vector<std::size_t> loads = {1, 4, 0};
  for (int trial = 0; trial < 50; ++trial) {
    const double t = simulate_load_balanced(workers, loads, rng);
    EXPECT_GE(t, 20.0);  // worker 1's floor a*r = 5*4 dominates
  }
}

TEST(Theorem2C, MatchesFormula) {
  // c = 2 + log(a + H_n / mu) / log m with a = 20, mu = 1, n = 100, m = 500.
  const auto workers = fig5_cluster();
  const double c = theorem2_c(workers, 500);
  const double expected =
      2.0 + std::log(20.0 + theory::harmonic(100) / 1.0) / std::log(500.0);
  EXPECT_NEAR(c, expected, 1e-12);
  EXPECT_GT(c, 2.0);
  EXPECT_LT(c, 3.0);
}


TEST(RefineLoads, NeverWorsensTheEstimateAndPreservesTotals) {
  std::vector<WorkerProfile> workers(12);
  for (std::size_t i = 0; i < 12; ++i) {
    workers[i] = {1.0 + 0.5 * static_cast<double>(i % 3),
                  0.5 + static_cast<double>(i % 4)};
  }
  const std::size_t m = 40;
  const std::size_t s = 80;
  const auto initial = allocate_loads(workers, s, m);
  const std::size_t initial_total = std::accumulate(
      initial.loads.begin(), initial.loads.end(), std::size_t{0});

  stats::Rng rng(9);
  const auto refined =
      refine_loads(workers, initial.loads, s, 200, 300, m, rng);

  // Baseline estimate under the same common random numbers.
  stats::Rng rng2(9);
  const auto baseline =
      refine_loads(workers, initial.loads, s, 0, 300, m, rng2);
  EXPECT_LE(refined.estimate, baseline.estimate + 1e-12);

  const std::size_t refined_total = std::accumulate(
      refined.loads.begin(), refined.loads.end(), std::size_t{0});
  EXPECT_EQ(refined_total, initial_total);
  for (std::size_t l : refined.loads) {
    EXPECT_LE(l, m);
  }
}

TEST(RefineLoads, ImprovesADeliberatelyBadAllocation) {
  // Everything piled on one slow worker: the hill climber must spread it.
  std::vector<WorkerProfile> workers = {{5.0, 0.5}, {1.0, 5.0}, {1.0, 5.0}};
  std::vector<std::size_t> bad = {30, 0, 0};
  stats::Rng rng(10);
  const auto refined = refine_loads(workers, bad, 30, 600, 200, 30, rng);
  stats::Rng rng2(10);
  const auto baseline = refine_loads(workers, {30, 0, 0}, 30, 0, 200, 30,
                                     rng2);
  EXPECT_LT(refined.estimate, 0.7 * baseline.estimate);
  EXPECT_LT(refined.loads[0], 30u);  // load actually moved off the slow one
}

TEST(Fig5, GeneralizedBccBeatsLoadBalancing) {
  // The paper's Fig. 5: ~29% mean computation-time reduction.
  const auto workers = fig5_cluster();
  const std::size_t m = 500;
  const auto s =
      static_cast<std::size_t>(std::floor(m * std::log(double(m))));
  const auto alloc = allocate_loads(workers, s, m);
  const auto lb_loads = load_balanced_assignment(workers, m);

  // With the paper's s = floor(m log m) the placement misses coverage on
  // a sizable fraction of draws (the coupon-collector Gumbel tail), so
  // the comparison conditions on covering placements — the operational
  // semantics of drawing a placement once and redrawing if it cannot
  // possibly cover (see EXPERIMENTS.md).
  stats::Rng rng(7);
  stats::OnlineStats bcc_time, lb_time;
  std::size_t failures = 0;
  const int trials = 400;
  for (int t = 0; t < trials; ++t) {
    const auto outcome = simulate_generalized_bcc(workers, alloc.loads, m, rng);
    if (!outcome.covered) {
      ++failures;
      continue;
    }
    bcc_time.add(outcome.time);
    lb_time.add(simulate_load_balanced(workers, lb_loads, rng));
  }
  EXPECT_LT(failures, trials * 6 / 10);
  ASSERT_GT(bcc_time.count(), 100u);
  const double reduction = 1.0 - bcc_time.mean() / lb_time.mean();
  EXPECT_GT(reduction, 0.10);
  EXPECT_LT(reduction, 0.50);
}

TEST(Theorem2, SandwichHoldsStatistically) {
  // min E[T-hat(m)] <= E[T_coverage] <= min E[T-hat(floor(c m log m))] + 1,
  // evaluated with the allocator's loads on a small cluster.
  std::vector<WorkerProfile> workers(20);
  for (std::size_t i = 0; i < 20; ++i) {
    workers[i] = {2.0, i < 15 ? 1.0 : 5.0};
  }
  const std::size_t m = 60;
  const double c = theorem2_c(workers, m);
  const auto s_upper = static_cast<std::size_t>(
      std::floor(c * static_cast<double>(m) * std::log(double(m))));

  stats::Rng rng(8);
  const auto lower_alloc = allocate_loads(workers, m, m);
  const double lower =
      mc_expected_t_hat(workers, lower_alloc.loads, m, 2000, rng);

  const auto upper_alloc = allocate_loads(workers, s_upper, m);
  const double upper =
      mc_expected_t_hat(workers, upper_alloc.loads, s_upper, 2000, rng) + 1.0;

  stats::OnlineStats coverage;
  for (int t = 0; t < 1000; ++t) {
    const auto outcome =
        simulate_generalized_bcc(workers, upper_alloc.loads, m, rng);
    if (outcome.covered) {
      coverage.add(outcome.time);
    }
  }
  ASSERT_GT(coverage.count(), 900u);
  EXPECT_LE(lower, coverage.mean() + 3.0 * coverage.sem());
  EXPECT_LE(coverage.mean(), upper + 3.0 * coverage.sem());
}

}  // namespace
}  // namespace coupon::core::hetero
