// Tests for the dense direct solvers (LU, QR least squares, Cholesky).

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "linalg/gemm.hpp"
#include "linalg/gemv.hpp"
#include "linalg/solve.hpp"
#include "linalg/vector_ops.hpp"
#include "stats/rng.hpp"

namespace coupon::linalg {
namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, stats::Rng& rng) {
  Matrix m(rows, cols);
  for (auto& v : m.data()) {
    v = rng.normal();
  }
  return m;
}

std::vector<double> random_vector(std::size_t n, stats::Rng& rng) {
  std::vector<double> v(n);
  for (auto& x : v) {
    x = rng.normal();
  }
  return v;
}

// --- LU ----------------------------------------------------------------------

class LuSolveTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LuSolveTest, RandomSystemResidualIsTiny) {
  const std::size_t n = GetParam();
  stats::Rng rng(100 + n);
  for (int trial = 0; trial < 5; ++trial) {
    const Matrix a = random_matrix(n, n, rng);
    const auto b = random_vector(n, rng);
    const auto x = solve(a, b);
    ASSERT_TRUE(x.has_value());
    EXPECT_LT(residual_norm(a, *x, b), 1e-9 * (1.0 + nrm2(b)));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuSolveTest,
                         ::testing::Values(1, 2, 3, 5, 10, 25, 50, 100));

TEST(LuSolve, KnownSystem) {
  const Matrix a = {{2.0, 1.0}, {1.0, 3.0}};
  const std::vector<double> b = {5.0, 10.0};
  const auto x = solve(a, b);
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR((*x)[0], 1.0, 1e-12);
  EXPECT_NEAR((*x)[1], 3.0, 1e-12);
}

TEST(LuSolve, SingularMatrixReturnsNullopt) {
  const Matrix a = {{1.0, 2.0}, {2.0, 4.0}};
  const std::vector<double> b = {1.0, 2.0};
  EXPECT_FALSE(solve(a, b).has_value());
}

TEST(LuSolve, PivotingHandlesZeroLeadingEntry) {
  const Matrix a = {{0.0, 1.0}, {1.0, 0.0}};
  const std::vector<double> b = {3.0, 7.0};
  const auto x = solve(a, b);
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR((*x)[0], 7.0, 1e-12);
  EXPECT_NEAR((*x)[1], 3.0, 1e-12);
}

TEST(LuFactor, ReusableForMultipleRhs) {
  stats::Rng rng(7);
  const Matrix a = random_matrix(8, 8, rng);
  const auto factors = lu_factor(a);
  for (int trial = 0; trial < 3; ++trial) {
    const auto b = random_vector(8, rng);
    const auto x = lu_solve(factors, b);
    ASSERT_TRUE(x.has_value());
    EXPECT_LT(residual_norm(a, *x, b), 1e-10);
  }
}

// --- QR / least squares --------------------------------------------------------

class QrSquareTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(QrSquareTest, SquareSystemSolvedExactly) {
  const std::size_t n = GetParam();
  stats::Rng rng(200 + n);
  const Matrix a = random_matrix(n, n, rng);
  const auto x_true = random_vector(n, rng);
  std::vector<double> b(n, 0.0);
  gemv(1.0, a, x_true, 0.0, b);
  const auto x = lstsq(a, b);
  ASSERT_TRUE(x.has_value());
  EXPECT_LT(max_abs_diff(*x, x_true), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, QrSquareTest,
                         ::testing::Values(1, 2, 4, 8, 20, 50));

TEST(Lstsq, ConsistentOverdeterminedIsExact) {
  stats::Rng rng(11);
  const Matrix a = random_matrix(30, 8, rng);
  const auto x_true = random_vector(8, rng);
  std::vector<double> b(30, 0.0);
  gemv(1.0, a, x_true, 0.0, b);
  const auto x = lstsq(a, b);
  ASSERT_TRUE(x.has_value());
  EXPECT_LT(max_abs_diff(*x, x_true), 1e-9);
  EXPECT_LT(residual_norm(a, *x, b), 1e-9);
}

TEST(Lstsq, InconsistentMatchesNormalEquations) {
  stats::Rng rng(13);
  const Matrix a = random_matrix(20, 5, rng);
  const auto b = random_vector(20, rng);
  const auto x = lstsq(a, b);
  ASSERT_TRUE(x.has_value());
  // Normal equations: (A^T A) x = A^T b, solved with Cholesky (SPD).
  const Matrix at = a.transposed();
  const Matrix ata = matmul(at, a);
  std::vector<double> atb(5, 0.0);
  gemv(1.0, at, b, 0.0, atb);
  const auto x_ne = cholesky_solve(ata, atb);
  ASSERT_TRUE(x_ne.has_value());
  EXPECT_LT(max_abs_diff(*x, *x_ne), 1e-8);
}

TEST(Lstsq, ResidualIsOrthogonalToColumnSpace) {
  stats::Rng rng(17);
  const Matrix a = random_matrix(25, 6, rng);
  const auto b = random_vector(25, rng);
  const auto x = lstsq(a, b);
  ASSERT_TRUE(x.has_value());
  // r = A x - b must satisfy A^T r = 0.
  std::vector<double> r(b.begin(), b.end());
  gemv(1.0, a, *x, -1.0, r);
  std::vector<double> atr(6, 0.0);
  gemv_transposed(1.0, a, r, 0.0, atr);
  EXPECT_LT(max_abs(atr), 1e-9);
}

TEST(Lstsq, RankDeficientReturnsNullopt) {
  // Two identical columns.
  Matrix a(6, 2);
  stats::Rng rng(19);
  for (std::size_t i = 0; i < 6; ++i) {
    a(i, 0) = rng.normal();
    a(i, 1) = a(i, 0);
  }
  const auto b = random_vector(6, rng);
  EXPECT_FALSE(lstsq(a, b).has_value());
}

TEST(QrFactor, RequiresRowsGeqCols) {
  EXPECT_THROW(qr_factor(Matrix(3, 5)), coupon::AssertionError);
}

TEST(QrFactor, RPreservesColumnNorms) {
  // |det(R)| == |det(A)| is hard; instead check ||A e_1|| == |R_11|.
  stats::Rng rng(23);
  const Matrix a = random_matrix(10, 4, rng);
  const auto f = qr_factor(a);
  ASSERT_FALSE(f.rank_deficient);
  double col0 = 0.0;
  for (std::size_t i = 0; i < 10; ++i) {
    col0 += a(i, 0) * a(i, 0);
  }
  EXPECT_NEAR(std::abs(f.qr(0, 0)), std::sqrt(col0), 1e-10);
}

// --- Cholesky -------------------------------------------------------------------

TEST(Cholesky, FactorsSpdMatrix) {
  stats::Rng rng(29);
  const Matrix g = random_matrix(6, 12, rng);
  const Matrix a = matmul(g, g.transposed());  // SPD with prob. 1
  const auto l = cholesky(a);
  ASSERT_TRUE(l.has_value());
  const Matrix rec = matmul(*l, l->transposed());
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = 0; j < 6; ++j) {
      EXPECT_NEAR(rec(i, j), a(i, j), 1e-9);
    }
  }
}

TEST(Cholesky, RejectsIndefinite) {
  const Matrix a = {{1.0, 2.0}, {2.0, 1.0}};  // eigenvalues 3, -1
  EXPECT_FALSE(cholesky(a).has_value());
}

TEST(CholeskySolve, SolvesSpdSystem) {
  stats::Rng rng(31);
  const Matrix g = random_matrix(8, 16, rng);
  const Matrix a = matmul(g, g.transposed());
  const auto x_true = random_vector(8, rng);
  std::vector<double> b(8, 0.0);
  gemv(1.0, a, x_true, 0.0, b);
  const auto x = cholesky_solve(a, b);
  ASSERT_TRUE(x.has_value());
  EXPECT_LT(max_abs_diff(*x, x_true), 1e-7);
}

TEST(ResidualNorm, ZeroForExactSolution) {
  const Matrix a = {{2.0, 0.0}, {0.0, 2.0}};
  const std::vector<double> x = {1.0, 2.0};
  const std::vector<double> b = {2.0, 4.0};
  EXPECT_NEAR(residual_norm(a, x, b), 0.0, 1e-14);
}

TEST(ResidualNorm, MeasuresDeviation) {
  const Matrix a = Matrix::identity(2);
  const std::vector<double> x = {1.0, 0.0};
  const std::vector<double> b = {0.0, 0.0};
  EXPECT_NEAR(residual_norm(a, x, b), 1.0, 1e-14);
}

}  // namespace
}  // namespace coupon::linalg
