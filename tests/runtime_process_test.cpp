// End-to-end tests of the multi-process socket runtime: real worker OS
// processes must reproduce the threaded runtime's training exactly from
// the same seed, survive a SIGKILLed worker mid-iteration via the
// FailurePolicy, and honour the elastic join/leave scenario. Every test
// skips cleanly in sandboxes without fork()/stream sockets.

#include <gtest/gtest.h>

#include <stdexcept>

#include "driver/driver.hpp"
#include "driver/runtime.hpp"
#include "runtime/process_cluster.hpp"

namespace coupon::runtime {
namespace {

driver::ExperimentConfig live_config(const std::string& runtime) {
  driver::ExperimentConfig config;
  config.scheme = "bcc";
  config.scenario = "no_stragglers";
  config.runtime = runtime;
  config.num_workers = 4;
  config.num_units = 4;
  config.load = 2;
  config.iterations = 12;
  config.seed = 123;
  config.features = 8;
  config.examples_per_unit = 5;
  return config;
}

#define SKIP_WITHOUT_PROCESS_SUPPORT()                                   \
  if (!ProcessCluster::supported()) {                                    \
    GTEST_SKIP() << "no fork()/stream sockets in this sandbox";          \
  }

TEST(ProcessRuntime, TrainsAcrossFourWorkerProcesses) {
  SKIP_WITHOUT_PROCESS_SUPPORT();
  const auto record = driver::run_experiment(live_config("process"));
  EXPECT_EQ(record.runtime, "process");
  EXPECT_EQ(record.iterations_run, 12u);
  EXPECT_EQ(record.workers_lost, 0u);
  EXPECT_EQ(record.failures, 0u);
  ASSERT_TRUE(record.final_loss.has_value());
  EXPECT_GT(record.recovery_threshold, 0.0);
}

TEST(ProcessRuntime, FinalLossMatchesThreadedFromTheSameSeed) {
  SKIP_WITHOUT_PROCESS_SUPPORT();
  // Both live runtimes draw data, scheme, and optimizer identically from
  // the seed, and these schemes' decodes are arrival-order independent,
  // so the final loss must agree bitwise despite real process scheduling.
  for (const auto* scheme : {"uncoded", "bcc"}) {
    auto process_config = live_config("process");
    process_config.scheme = scheme;
    auto threaded_config = live_config("threaded");
    threaded_config.scheme = scheme;
    const auto process_record = driver::run_experiment(process_config);
    const auto threaded_record = driver::run_experiment(threaded_config);
    ASSERT_TRUE(process_record.final_loss.has_value()) << scheme;
    ASSERT_TRUE(threaded_record.final_loss.has_value()) << scheme;
    EXPECT_EQ(*process_record.final_loss, *threaded_record.final_loss)
        << scheme;
    EXPECT_EQ(process_record.train_accuracy, threaded_record.train_accuracy)
        << scheme;
  }
}

TEST(ProcessRuntime, SurvivesSigkilledWorkerMidIteration) {
  SKIP_WITHOUT_PROCESS_SUPPORT();
  // Worker 1 raises SIGKILL on receiving iteration 2's broadcast: the
  // master must observe the socket EOF, shrink its expectation, and
  // finish all 12 iterations on the survivors under kSkipUpdate.
  auto config = live_config("process");
  config.crash_worker = 1;
  config.crash_iteration = 2;
  config.worker_timeout_ms = 5000;
  const auto record = driver::run_experiment(config);
  EXPECT_EQ(record.iterations_run, 12u);
  EXPECT_EQ(record.workers_lost, 1u);
  ASSERT_TRUE(record.final_loss.has_value());
  EXPECT_LT(*record.final_loss, 0.69);  // better than the ln(2) start
}

TEST(ProcessRuntime, ElasticScenarioCompletesWithAbsenceWindow) {
  SKIP_WITHOUT_PROCESS_SUPPORT();
  auto config = live_config("process");
  config.scenario = "elastic:1@3-8";
  const auto record = driver::run_experiment(config);
  EXPECT_EQ(record.iterations_run, 12u);
  EXPECT_EQ(record.workers_lost, 0u);  // absence is planned, not a death
  ASSERT_TRUE(record.final_loss.has_value());
}

TEST(ProcessRuntime, RejectsSimOnlyScenario) {
  auto config = live_config("process");
  config.scenario = "lossy";
  EXPECT_THROW(driver::run_experiment(config), std::invalid_argument);
}

TEST(CrashDrill, RejectedByRuntimesWithoutProcesses) {
  for (const auto* runtime : {"sim", "threaded"}) {
    auto config = live_config(runtime);
    config.crash_worker = 0;
    EXPECT_THROW(driver::run_experiment(config), std::invalid_argument)
        << runtime;
  }
}

TEST(ElasticScenario, RejectedBySimRuntime) {
  auto config = live_config("sim");
  config.scenario = "elastic";
  EXPECT_THROW(driver::run_experiment(config), std::invalid_argument);
}

TEST(ElasticScenario, ThreadedRuntimeHonoursAbsenceWindow) {
  auto config = live_config("threaded");
  config.scenario = "elastic:2@3-8";
  const auto record = driver::run_experiment(config);
  EXPECT_EQ(record.iterations_run, 12u);
  ASSERT_TRUE(record.final_loss.has_value());
}

TEST(ElasticScenario, BadArgumentDiagnosed) {
  auto config = live_config("threaded");
  config.scenario = "elastic:2@8-3";  // leave must precede rejoin
  EXPECT_THROW(driver::run_experiment(config), std::invalid_argument);
}

}  // namespace
}  // namespace coupon::runtime
