// Tests for the discrete-event engine, the cluster iteration model, and
// the EC2-scenario harness (the Fig. 4 / Table I-II shape).

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <memory>
#include <sstream>

#include "core/core.hpp"
#include "simulate/simulate.hpp"
#include "stats/rng.hpp"
#include "util/assert.hpp"

namespace coupon::simulate {
namespace {

// --- event queue -----------------------------------------------------------------

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueue, TiesBreakFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule(1.0, [&order, i] { order.push_back(i); });
  }
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CallbacksCanScheduleMoreEvents) {
  EventQueue q;
  std::vector<double> times;
  q.schedule(1.0, [&] {
    times.push_back(q.now());
    q.schedule_after(0.5, [&] { times.push_back(q.now()); });
  });
  q.run_all();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 1.5);
}

TEST(EventQueue, SchedulingIntoThePastAsserts) {
  EventQueue q;
  q.schedule(2.0, [] {});
  q.run_all();
  EXPECT_THROW(q.schedule(1.0, [] {}), coupon::AssertionError);
}

TEST(EventQueue, RunUntilStopsAtPredicate) {
  EventQueue q;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    q.schedule(static_cast<double>(i), [&count] { ++count; });
  }
  q.run_until([&count] { return count >= 3; });
  EXPECT_EQ(count, 3);
  EXPECT_EQ(q.pending(), 7u);
}

TEST(EventQueue, RunNextOnEmptyReturnsFalse) {
  EventQueue q;
  EXPECT_FALSE(q.run_next());
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, LargeCapturesFallBackToTheHeapAndStillRun) {
  // InplaceCallback stores small lambdas inline; captures past the
  // inline capacity take the heap path — behavior must be identical.
  EventQueue q;
  std::array<double, 32> big{};  // 256 bytes > kInlineCapacity
  big[0] = 1.0;
  big[31] = 2.0;
  double sum = 0.0;
  q.schedule(1.0, [big, &sum] { sum = big[0] + big[31]; });
  static_assert(sizeof(big) > InplaceCallback::kInlineCapacity);
  q.run_all();
  EXPECT_DOUBLE_EQ(sum, 3.0);
}

TEST(EventQueue, InvokingAnEmptyCallbackAssertsLoudly) {
  EventQueue q;
  q.schedule(1.0, InplaceCallback{});
  EXPECT_THROW(q.run_all(), coupon::AssertionError);
}

TEST(EventQueue, MoveOnlyCallbacksAreAccepted) {
  EventQueue q;
  auto payload = std::make_unique<int>(41);
  int seen = 0;
  q.schedule(1.0, [p = std::move(payload), &seen] { seen = *p + 1; });
  q.run_all();
  EXPECT_EQ(seen, 42);
}

// --- single iteration ---------------------------------------------------------------

ClusterConfig test_cluster() {
  ClusterConfig c;
  c.compute_shift = 1e-3;
  c.compute_straggle = 100.0;
  c.unit_transfer_seconds = 2e-3;
  c.broadcast_seconds = 1e-4;
  return c;
}

TEST(SimulateIteration, UncodedAlwaysHearsEveryWorker) {
  stats::Rng rng(1);
  core::SchemeConfig config{10, 10, 1, false};
  auto scheme = core::SchemeRegistry::instance().create("uncoded", config, rng);
  for (int trial = 0; trial < 10; ++trial) {
    const auto report = simulate_iteration(*scheme, test_cluster(), rng);
    EXPECT_TRUE(report.recovered);
    EXPECT_EQ(report.workers_heard, 10u);
    EXPECT_DOUBLE_EQ(report.units_received, 10.0);
  }
}

TEST(SimulateIteration, CyclicRepetitionHearsExactlyNMinusS) {
  stats::Rng rng(2);
  core::SchemeConfig config{10, 10, 4, false};
  auto scheme =
      core::SchemeRegistry::instance().create("cr", config, rng);
  for (int trial = 0; trial < 10; ++trial) {
    const auto report = simulate_iteration(*scheme, test_cluster(), rng);
    EXPECT_TRUE(report.recovered);
    EXPECT_EQ(report.workers_heard, 7u);  // n - r + 1
  }
}

TEST(SimulateIteration, BccHearsAtLeastBatchCount) {
  stats::Rng rng(3);
  core::SchemeConfig config{50, 20, 4, false};  // B = 5
  auto scheme = core::SchemeRegistry::instance().create("bcc", config, rng);
  for (int trial = 0; trial < 10; ++trial) {
    const auto report = simulate_iteration(*scheme, test_cluster(), rng);
    if (report.recovered) {
      EXPECT_GE(report.workers_heard, 5u);
      EXPECT_LE(report.workers_heard, 50u);
    }
  }
}

TEST(SimulateIteration, TimeDecomposesIntoComputeAndComm) {
  stats::Rng rng(4);
  core::SchemeConfig config{8, 8, 2, false};
  auto scheme =
      core::SchemeRegistry::instance().create("cr", config, rng);
  const auto report = simulate_iteration(*scheme, test_cluster(), rng);
  EXPECT_TRUE(report.recovered);
  EXPECT_NEAR(report.total_time, report.compute_time + report.comm_time,
              1e-12);
  EXPECT_GT(report.compute_time, 0.0);
  EXPECT_GT(report.comm_time, 0.0);
  // Total must cover broadcast + at least one transfer.
  EXPECT_GE(report.total_time,
            test_cluster().broadcast_seconds +
                test_cluster().unit_transfer_seconds);
}

TEST(SimulateIteration, SerializedIngressLowerBoundsCommTime) {
  // K messages through a serial link take at least K * service time.
  stats::Rng rng(5);
  core::SchemeConfig config{12, 12, 1, false};
  auto scheme = core::SchemeRegistry::instance().create("uncoded", config, rng);
  const auto cluster = test_cluster();
  const auto report = simulate_iteration(*scheme, cluster, rng);
  EXPECT_GE(report.total_time,
            static_cast<double>(report.workers_heard) *
                cluster.unit_transfer_seconds);
}

TEST(SimulateIteration, DeterministicGivenSeed) {
  core::SchemeConfig config{20, 20, 5, false};
  stats::Rng rng_a(42), rng_b(42);
  auto scheme_a = core::SchemeRegistry::instance().create("bcc", config, rng_a);
  auto scheme_b = core::SchemeRegistry::instance().create("bcc", config, rng_b);
  const auto ra = simulate_iteration(*scheme_a, test_cluster(), rng_a);
  const auto rb = simulate_iteration(*scheme_b, test_cluster(), rng_b);
  EXPECT_DOUBLE_EQ(ra.total_time, rb.total_time);
  EXPECT_EQ(ra.workers_heard, rb.workers_heard);
}

// --- multi-iteration runs --------------------------------------------------------------

TEST(SimulateRun, RecordTraceOffMatchesOnExceptForTheTrace) {
  core::SchemeConfig config{10, 10, 3, false};
  stats::Rng rng_a(21), rng_b(21);
  auto scheme_a =
      core::SchemeRegistry::instance().create("bcc", config, rng_a);
  auto scheme_b =
      core::SchemeRegistry::instance().create("bcc", config, rng_b);

  RunOptions with_trace{/*iterations=*/15, /*record_trace=*/true};
  RunOptions without_trace{/*iterations=*/15, /*record_trace=*/false};
  const auto run_a = simulate_run(*scheme_a, test_cluster(), with_trace,
                                  rng_a);
  const auto run_b = simulate_run(*scheme_b, test_cluster(), without_trace,
                                  rng_b);

  EXPECT_EQ(run_a.iterations.size(), 15u);
  EXPECT_TRUE(run_b.iterations.empty());
  EXPECT_DOUBLE_EQ(run_a.total_time, run_b.total_time);
  EXPECT_DOUBLE_EQ(run_a.total_compute_time, run_b.total_compute_time);
  EXPECT_DOUBLE_EQ(run_a.workers_heard.mean(), run_b.workers_heard.mean());
  EXPECT_EQ(run_a.failures, run_b.failures);
}

TEST(SimulateRun, LegacyIterationCountOverloadStillRecordsTheTrace) {
  stats::Rng rng(22);
  core::SchemeConfig config{8, 8, 2, false};
  auto scheme = core::SchemeRegistry::instance().create("uncoded", config, rng);
  const auto run = simulate_run(*scheme, test_cluster(), 6, rng);
  EXPECT_EQ(run.iterations.size(), 6u);
}

TEST(SimulateRun, AggregatesMatchPerIterationReports) {
  stats::Rng rng(6);
  core::SchemeConfig config{10, 10, 3, false};
  auto scheme =
      core::SchemeRegistry::instance().create("cr", config, rng);
  const auto run = simulate_run(*scheme, test_cluster(), 20, rng);
  ASSERT_EQ(run.iterations.size(), 20u);
  double total = 0.0, compute = 0.0, comm = 0.0;
  for (const auto& it : run.iterations) {
    total += it.total_time;
    compute += it.compute_time;
    comm += it.comm_time;
  }
  EXPECT_NEAR(run.total_time, total, 1e-9);
  EXPECT_NEAR(run.total_compute_time, compute, 1e-9);
  EXPECT_NEAR(run.total_comm_time, comm, 1e-9);
  EXPECT_EQ(run.workers_heard.count(), 20u);
  EXPECT_EQ(run.failures, 0u);
}

TEST(SimulateRun, BccMeanThresholdTracksTheorem1) {
  stats::Rng rng(7);
  core::SchemeConfig config{400, 20, 4, false};  // B = 5, K ~ 11.42
  auto scheme = core::SchemeRegistry::instance().create("bcc", config, rng);
  const auto run = simulate_run(*scheme, test_cluster(), 400, rng);
  EXPECT_EQ(run.failures, 0u);
  // One fixed placement: looser tolerance than the fresh-placement test.
  EXPECT_NEAR(run.workers_heard.mean(), core::theory::k_bcc(20, 4), 3.5);
}


// --- failure injection and heterogeneity -----------------------------------------

TEST(SimulateIteration, DropProbabilityOneFailsEverything) {
  stats::Rng rng(8);
  core::SchemeConfig config{6, 6, 1, false};
  auto scheme = core::SchemeRegistry::instance().create("uncoded", config, rng);
  auto cluster = test_cluster();
  cluster.drop_probability = 1.0;
  const auto report = simulate_iteration(*scheme, cluster, rng);
  EXPECT_FALSE(report.recovered);
  EXPECT_EQ(report.workers_heard, 0u);
}

TEST(SimulateRun, UncodedIsFragileWhileBccIsRobustToDrops) {
  stats::Rng rng(9);
  core::SchemeConfig config{50, 50, 10, false};
  auto cluster = test_cluster();
  cluster.drop_probability = 0.05;

  auto uncoded = core::SchemeRegistry::instance().create("uncoded", config, rng);
  const auto run_uncoded = simulate_run(*uncoded, cluster, 100, rng);
  auto bcc = core::SchemeRegistry::instance().create("bcc", config, rng);
  const auto run_bcc = simulate_run(*bcc, cluster, 100, rng);

  // Any lost message kills an uncoded iteration (P ~ 1 - 0.95^50 ~ 0.92);
  // BCC needs a whole batch's pickers lost.
  EXPECT_GT(run_uncoded.failures, 60u);
  EXPECT_LT(run_bcc.failures, 30u);
  EXPECT_LT(run_bcc.failures, run_uncoded.failures);
}

TEST(SimulateRun, FractionalRepetitionSurvivesHeavyDrops) {
  stats::Rng rng(10);
  core::SchemeConfig config{50, 50, 10, false};
  auto cluster = test_cluster();
  cluster.drop_probability = 0.3;
  auto fr = core::SchemeRegistry::instance().create("fr",
                              config, rng);
  const auto run = simulate_run(*fr, cluster, 50, rng);
  // Each block has r = 10 replicas: failure needs all ten lost (0.3^10).
  EXPECT_EQ(run.failures, 0u);
}

TEST(SimulateIteration, WorkerOverridesControlComputeTimes) {
  stats::Rng rng(11);
  core::SchemeConfig config{3, 3, 1, false};
  auto scheme = core::SchemeRegistry::instance().create("uncoded", config, rng);
  auto cluster = test_cluster();
  cluster.worker_overrides = {
      {10.0, 1e6}, {1e-4, 1e6}, {1e-4, 1e6}};  // worker 0: ~10 s floor
  const auto report = simulate_iteration(*scheme, cluster, rng);
  ASSERT_TRUE(report.recovered);
  // Uncoded waits for worker 0, whose deterministic floor dominates.
  EXPECT_GE(report.compute_time, 10.0);
  EXPECT_LT(report.compute_time, 10.1);
}

TEST(SimulateIteration, OverrideSizeMismatchAsserts) {
  stats::Rng rng(12);
  core::SchemeConfig config{4, 4, 1, false};
  auto scheme = core::SchemeRegistry::instance().create("uncoded", config, rng);
  auto cluster = test_cluster();
  cluster.worker_overrides = {{1.0, 1.0}};  // wrong size
  EXPECT_THROW(simulate_iteration(*scheme, cluster, rng),
               coupon::AssertionError);
}


TEST(WriteIterationCsv, EmitsHeaderAndOneLinePerIteration) {
  stats::Rng rng(13);
  core::SchemeConfig config{6, 6, 2, false};
  auto scheme =
      core::SchemeRegistry::instance().create("cr", config, rng);
  const auto run = simulate_run(*scheme, test_cluster(), 5, rng);
  std::ostringstream os;
  write_iteration_csv(os, run);
  const std::string text = os.str();
  // Header + 5 data rows.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 6);
  EXPECT_NE(text.find("iteration,total_time"), std::string::npos);
  EXPECT_NE(text.find("\n0,"), std::string::npos);
  EXPECT_NE(text.find("\n4,"), std::string::npos);
  // CR hears n - s = 5 workers each iteration.
  EXPECT_NE(text.find(",5,"), std::string::npos);
}
// --- paper scenarios ---------------------------------------------------------------------

TEST(Scenario, Ec2ConfigsMatchThePaper) {
  const auto s1 = ec2_scenario_one();
  EXPECT_EQ(s1.num_workers, 50u);
  EXPECT_EQ(s1.num_units, 50u);
  EXPECT_EQ(s1.load, 10u);
  EXPECT_EQ(s1.iterations, 100u);
  const auto s2 = ec2_scenario_two();
  EXPECT_EQ(s2.num_workers, 100u);
  EXPECT_EQ(s2.num_units, 100u);
}

TEST(Scenario, Fig4ShapeHoldsInScenarioOne) {
  const auto rows = run_scenario(
      ec2_scenario_one(),
      {"uncoded", "cr", "bcc"});
  ASSERT_EQ(rows.size(), 3u);
  const auto& uncoded = rows[0];
  const auto& cr = rows[1];
  const auto& bcc = rows[2];

  // Recovery-threshold ordering: BCC ~ 11 << CR = 41 < uncoded = 50.
  EXPECT_DOUBLE_EQ(uncoded.recovery_threshold, 50.0);
  EXPECT_DOUBLE_EQ(cr.recovery_threshold, 41.0);
  EXPECT_LT(bcc.recovery_threshold, 20.0);
  EXPECT_GE(bcc.recovery_threshold, 5.0);

  // Total-time ordering and the headline speedups (shape, wide bands).
  EXPECT_LT(bcc.total_time, cr.total_time);
  EXPECT_LT(cr.total_time, uncoded.total_time);
  const double vs_uncoded = speedup_fraction(bcc, uncoded);
  const double vs_cr = speedup_fraction(bcc, cr);
  EXPECT_GT(vs_uncoded, 0.5);
  EXPECT_LT(vs_uncoded, 0.95);
  EXPECT_GT(vs_cr, 0.4);

  // Communication dominates computation, as in Table I.
  EXPECT_GT(uncoded.comm_time, uncoded.compute_time);
  EXPECT_GT(bcc.comm_time, bcc.compute_time);
}

TEST(Scenario, Fig4ShapeHoldsInScenarioTwo) {
  const auto rows = run_scenario(
      ec2_scenario_two(),
      {"uncoded", "cr", "bcc"});
  const auto& uncoded = rows[0];
  const auto& cr = rows[1];
  const auto& bcc = rows[2];
  EXPECT_DOUBLE_EQ(uncoded.recovery_threshold, 100.0);
  EXPECT_DOUBLE_EQ(cr.recovery_threshold, 91.0);
  EXPECT_NEAR(bcc.recovery_threshold, core::theory::k_bcc(100, 10), 6.0);
  EXPECT_LT(bcc.total_time, cr.total_time);
  EXPECT_LT(cr.total_time, uncoded.total_time);
  EXPECT_GT(speedup_fraction(bcc, cr), 0.5);
}

TEST(Scenario, TotalTimeTracksRecoveryThreshold) {
  // The paper's Tables I/II observation: total time is approximately
  // proportional to K when communication dominates.
  const auto rows = run_scenario(
      ec2_scenario_two(),
      {"uncoded", "cr", "bcc"});
  for (const auto& a : rows) {
    for (const auto& b : rows) {
      if (a.recovery_threshold <= b.recovery_threshold) {
        continue;
      }
      const double k_ratio = a.recovery_threshold / b.recovery_threshold;
      const double t_ratio = a.total_time / b.total_time;
      EXPECT_NEAR(t_ratio, k_ratio, 0.45 * k_ratio)
          << a.scheme << " vs " << b.scheme;
    }
  }
}

TEST(SpeedupFraction, BasicAlgebra) {
  SchemeRunRow fast, slow;
  fast.total_time = 2.0;
  slow.total_time = 10.0;
  EXPECT_DOUBLE_EQ(speedup_fraction(fast, slow), 0.8);
}

}  // namespace
}  // namespace coupon::simulate
