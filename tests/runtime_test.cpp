// End-to-end tests of the threaded runtime: distributed GD over real
// worker threads must reproduce serial training exactly (up to decode
// round-off), for every scheme, with and without injected stragglers.

#include <gtest/gtest.h>

#include <cctype>

#include "core/core.hpp"
#include "data/synthetic.hpp"
#include "linalg/vector_ops.hpp"
#include "opt/opt.hpp"
#include "runtime/runtime.hpp"
#include "stats/rng.hpp"

namespace coupon::runtime {
namespace {

constexpr std::size_t kUnits = 8;
constexpr std::size_t kWorkers = 8;
constexpr std::size_t kLoad = 2;  // divides kWorkers for FR
constexpr std::size_t kFeatures = 5;
constexpr std::size_t kIterations = 6;

struct Setup {
  data::SyntheticProblem problem;
  std::unique_ptr<core::PerExampleSource> source;
  std::unique_ptr<core::Scheme> scheme;
};

Setup make_setup(const std::string& kind, std::uint64_t seed = 3) {
  Setup s;
  stats::Rng rng(seed);
  data::SyntheticConfig dconf;
  dconf.num_features = kFeatures;
  s.problem = data::generate_logreg(kUnits, dconf, rng);
  s.source = std::make_unique<core::PerExampleSource>(s.problem.dataset);
  core::SchemeConfig config{kWorkers, kUnits, kLoad, true};
  // Random placements (simple randomized) may miss a unit at this small
  // n; redraw until the placement covers, as a deployment would before
  // shipping data to workers.
  for (int attempt = 0; attempt < 64; ++attempt) {
    s.scheme = core::SchemeRegistry::instance().create(kind, config, rng);
    if (s.scheme->placement().covers_all_examples()) {
      return s;
    }
  }
  ADD_FAILURE() << "no covering placement in 64 draws";
  return s;
}

std::vector<double> serial_reference(const data::Dataset& dataset) {
  opt::NesterovGradient opt(kFeatures,
                            opt::LearningRateSchedule::constant(0.5));
  const auto oracle = opt::make_logistic_oracle(dataset);
  return opt::train(opt, oracle, kIterations).weights;
}

class RuntimeSchemeTest : public ::testing::TestWithParam<const char*> {};

TEST_P(RuntimeSchemeTest, DistributedMatchesSerialTraining) {
  const auto setup = make_setup(GetParam());
  const auto expected = serial_reference(setup.problem.dataset);

  ThreadCluster cluster(*setup.scheme, *setup.source);
  opt::NesterovGradient opt(kFeatures,
                            opt::LearningRateSchedule::constant(0.5));
  TrainOptions options;
  options.iterations = kIterations;
  const auto result = cluster.train(opt, options);

  EXPECT_EQ(result.failed_iterations, 0u);
  ASSERT_EQ(result.weights.size(), expected.size());
  EXPECT_LT(linalg::max_abs_diff(result.weights, expected), 1e-7)
      << "scheme " << setup.scheme->name();
}

TEST_P(RuntimeSchemeTest, StragglerInjectionDoesNotChangeTheMath) {
  const auto setup = make_setup(GetParam());
  const auto expected = serial_reference(setup.problem.dataset);

  ThreadCluster cluster(*setup.scheme, *setup.source);
  opt::NesterovGradient opt(kFeatures,
                            opt::LearningRateSchedule::constant(0.5));
  TrainOptions options;
  options.iterations = kIterations;
  options.straggler.enabled = true;
  options.straggler.shift_ms_per_unit = 0.2;
  options.straggler.straggle = 2.0;
  const auto result = cluster.train(opt, options);

  EXPECT_EQ(result.failed_iterations, 0u);
  EXPECT_LT(linalg::max_abs_diff(result.weights, expected), 1e-7);
  EXPECT_GT(result.elapsed_seconds, 0.0);
}

TEST_P(RuntimeSchemeTest, RecoveryThresholdAccountingIsSane) {
  const auto setup = make_setup(GetParam());
  ThreadCluster cluster(*setup.scheme, *setup.source);
  opt::GradientDescent opt(kFeatures,
                           opt::LearningRateSchedule::constant(0.2));
  TrainOptions options;
  options.iterations = 4;
  const auto result = cluster.train(opt, options);
  EXPECT_EQ(result.workers_heard.count(), 4u);
  EXPECT_GE(result.workers_heard.min(), 1.0);
  EXPECT_LE(result.workers_heard.max(), static_cast<double>(kWorkers));
  EXPECT_GE(result.units_received.min(), result.workers_heard.min());
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, RuntimeSchemeTest,
    ::testing::Values("uncoded", "bcc", "simple_random", "cr", "fr"),
    [](const ::testing::TestParamInfo<const char*>& param_info) {
      std::string name = param_info.param;
      name[0] = static_cast<char>(std::toupper(name[0]));
      const auto underscore = name.find('_');
      if (underscore != std::string::npos) {
        name.erase(underscore, 1);
        name[underscore] = static_cast<char>(std::toupper(name[underscore]));
      }
      return name;
    });

TEST(Runtime, BccWithLowerKThanUncoded) {
  // BCC's master should on average stop after fewer workers than n.
  stats::Rng rng(9);
  data::SyntheticConfig dconf;
  dconf.num_features = 4;
  const auto problem = data::generate_logreg(6, dconf, rng);
  core::PerExampleSource source(problem.dataset);
  core::SchemeConfig config{24, 6, 2, true};  // B = 3, n = 24
  auto scheme = core::SchemeRegistry::instance().create("bcc", config, rng);

  ThreadCluster cluster(*scheme, source);
  opt::GradientDescent opt(4, opt::LearningRateSchedule::constant(0.1));
  TrainOptions options;
  options.iterations = 10;
  // Stragglers make arrival order genuinely random across iterations.
  options.straggler.enabled = true;
  options.straggler.shift_ms_per_unit = 0.05;
  options.straggler.straggle = 1.0;
  const auto result = cluster.train(opt, options);
  EXPECT_EQ(result.failed_iterations, 0u);
  EXPECT_LT(result.workers_heard.mean(), 24.0);
}

TEST(Runtime, BccCoverageFailureSkipsUpdateAndContinues) {
  // n = B = 2 randomly-placed workers collide on one batch with
  // probability 1/2 per placement; scan seeds until a colliding placement
  // shows up, then verify the run degrades gracefully.
  data::SyntheticConfig dconf;
  dconf.num_features = 3;
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    stats::Rng rng(seed);
    const auto problem = data::generate_logreg(4, dconf, rng);
    core::PerExampleSource source(problem.dataset);
    core::SchemeConfig config{2, 4, 2, false};  // B = 2, n = 2
    auto scheme = core::SchemeRegistry::instance().create("bcc", config, rng);
    const bool collides = !scheme->placement().covers_all_examples();
    if (!collides) {
      continue;
    }
    ThreadCluster cluster(*scheme, source);
    opt::GradientDescent opt(3, opt::LearningRateSchedule::constant(0.1));
    TrainOptions options;
    options.iterations = 3;
    const auto result = cluster.train(opt, options);
    EXPECT_EQ(result.failed_iterations, 3u);
    // No update was ever applied.
    EXPECT_EQ(result.weights, std::vector<double>(3, 0.0));
    return;
  }
  FAIL() << "no colliding placement in 32 seeds (p ~ 2^-32)";
}


TEST(Runtime, PartialFallbackAppliesRescaledCoveredGradient) {
  // n = B = 2 workers colliding on one batch: full coverage is
  // impossible, but kApplyPartial should apply exactly
  // (sum over the covered batch) / (m * covered/units) each iteration.
  data::SyntheticConfig dconf;
  dconf.num_features = 3;
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    stats::Rng rng(seed);
    const auto problem = data::generate_logreg(4, dconf, rng);
    core::PerExampleSource source(problem.dataset);
    core::SchemeConfig config{2, 4, 2, false};  // B = 2, n = 2
    auto scheme = core::SchemeRegistry::instance().create("bcc", config, rng);
    if (scheme->placement().covers_all_examples()) {
      continue;  // need a colliding placement
    }
    const auto* bcc = dynamic_cast<const core::BccScheme*>(scheme.get());
    ASSERT_NE(bcc, nullptr);
    const std::size_t batch = bcc->batch_of_worker(0);

    ThreadCluster cluster(*scheme, source);
    opt::GradientDescent opt(3, opt::LearningRateSchedule::constant(0.1));
    TrainOptions options;
    options.iterations = 1;
    options.on_failure = FailurePolicy::kApplyPartial;
    const auto result = cluster.train(opt, options);
    EXPECT_EQ(result.partial_iterations, 1u);
    EXPECT_EQ(result.failed_iterations, 0u);

    // Expected: one GD step with grad = batch_sum / (4 * 2/4) = sum/2.
    std::vector<double> batch_sum(3, 0.0);
    const std::vector<std::size_t> idx = {batch * 2, batch * 2 + 1};
    opt::partial_gradient_sum(problem.dataset, idx,
                              std::vector<double>(3, 0.0), batch_sum, false);
    std::vector<double> expected(3);
    for (std::size_t c = 0; c < 3; ++c) {
      expected[c] = -0.1 * batch_sum[c] / 2.0;
    }
    EXPECT_LT(linalg::max_abs_diff(result.weights, expected), 1e-12);
    return;
  }
  FAIL() << "no colliding placement in 32 seeds";
}

TEST(Runtime, PartialFallbackStillMakesTrainingProgress) {
  // Same degenerate cluster over many iterations: the approximate
  // gradient still reduces the loss, unlike kSkipUpdate which freezes.
  data::SyntheticConfig dconf;
  dconf.num_features = 3;
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    stats::Rng rng(seed);
    const auto problem = data::generate_logreg(4, dconf, rng);
    core::PerExampleSource source(problem.dataset);
    core::SchemeConfig config{2, 4, 2, false};
    auto scheme = core::SchemeRegistry::instance().create("bcc", config, rng);
    if (scheme->placement().covers_all_examples()) {
      continue;
    }
    ThreadCluster cluster(*scheme, source);
    opt::GradientDescent opt(3, opt::LearningRateSchedule::constant(0.2));
    TrainOptions options;
    options.iterations = 15;
    options.on_failure = FailurePolicy::kApplyPartial;
    const auto result = cluster.train(opt, options);
    EXPECT_EQ(result.partial_iterations, 15u);
    // Loss on the *covered* half decreased; the weights moved.
    EXPECT_GT(linalg::max_abs(result.weights), 0.0);
    return;
  }
  FAIL() << "no colliding placement in 32 seeds";
}

TEST(Runtime, GroupedSourceMatchesSerial) {
  // The EC2 setup: units are batches of underlying examples.
  stats::Rng rng(11);
  data::SyntheticConfig dconf;
  dconf.num_features = 4;
  const auto problem = data::generate_logreg(12, dconf, rng);
  data::BatchPartition partition(12, 2);  // 6 units of 2 examples
  core::GroupedBatchSource source(problem.dataset, partition);

  core::SchemeConfig config{6, 6, 2, true};
  auto scheme = core::SchemeRegistry::instance().create("bcc", config, rng);
  ThreadCluster cluster(*scheme, source);
  opt::NesterovGradient opt(4, opt::LearningRateSchedule::constant(0.5));
  TrainOptions options;
  options.iterations = 5;
  const auto result = cluster.train(opt, options);

  opt::NesterovGradient serial(4, opt::LearningRateSchedule::constant(0.5));
  const auto oracle = opt::make_logistic_oracle(problem.dataset);
  const auto expected = opt::train(serial, oracle, 5).weights;
  EXPECT_LT(linalg::max_abs_diff(result.weights, expected), 1e-8);
}


TEST(Runtime, LeastSquaresLossTrainsThroughSchemesToo) {
  // The scheme layer is loss-agnostic: swap the gradient source for the
  // squared loss and distributed training still matches serial exactly.
  stats::Rng rng(15);
  data::SyntheticConfig dconf;
  dconf.num_features = 4;
  const auto problem = data::generate_linreg(10, dconf, 0.2, rng);
  core::LeastSquaresExampleSource source(problem.dataset);

  core::SchemeConfig config{10, 10, 2, true};
  auto scheme = core::SchemeRegistry::instance().create("bcc", config, rng);
  ThreadCluster cluster(*scheme, source);
  opt::GradientDescent optimizer(4, opt::LearningRateSchedule::constant(0.1));
  TrainOptions options;
  options.iterations = 20;
  const auto result = cluster.train(optimizer, options);

  opt::GradientDescent serial(4, opt::LearningRateSchedule::constant(0.1));
  const opt::GradientOracle oracle = [&](std::span<const double> w,
                                         std::span<double> g) {
    opt::squared_gradient(problem.dataset, w, g);
  };
  const auto expected = opt::train(serial, oracle, 20).weights;
  EXPECT_EQ(result.failed_iterations, 0u);
  EXPECT_LT(linalg::max_abs_diff(result.weights, expected), 1e-9);
  // Training made real progress on the squared loss.
  EXPECT_LT(opt::squared_loss(problem.dataset, result.weights),
            0.5 * opt::squared_loss(problem.dataset,
                                    std::vector<double>(4, 0.0)));
}

TEST(Runtime, AlternativeOptimizersDriveTheSameLoop) {
  // HeavyBall and AdaGrad plug into the identical master handshake.
  const auto setup = make_setup("bcc");
  for (int which = 0; which < 2; ++which) {
    ThreadCluster cluster(*setup.scheme, *setup.source);
    TrainOptions options;
    options.iterations = 5;
    std::unique_ptr<opt::IterativeOptimizer> optimizer;
    if (which == 0) {
      optimizer = std::make_unique<opt::HeavyBallGradient>(
          kFeatures, opt::LearningRateSchedule::constant(0.3), 0.5);
    } else {
      optimizer = std::make_unique<opt::AdaGrad>(
          kFeatures, opt::LearningRateSchedule::constant(0.3));
    }
    const auto result = cluster.train(*optimizer, options);
    EXPECT_EQ(result.failed_iterations, 0u);
    EXPECT_LT(opt::logistic_loss(setup.problem.dataset, result.weights),
              opt::logistic_loss(setup.problem.dataset,
                                 std::vector<double>(kFeatures, 0.0)));
  }
}

TEST(Runtime, ReusableForConsecutiveTrainingRuns) {
  const auto setup = make_setup("uncoded");
  ThreadCluster cluster(*setup.scheme, *setup.source);
  TrainOptions options;
  options.iterations = 2;
  opt::GradientDescent opt1(kFeatures,
                            opt::LearningRateSchedule::constant(0.1));
  const auto r1 = cluster.train(opt1, options);
  opt::GradientDescent opt2(kFeatures,
                            opt::LearningRateSchedule::constant(0.1));
  const auto r2 = cluster.train(opt2, options);
  EXPECT_EQ(r1.weights, r2.weights);  // identical deterministic runs
}

}  // namespace
}  // namespace coupon::runtime
