// Cross-configuration property sweep: every scheme × a grid of
// (n workers, m units, r load) settings must satisfy the placement,
// accounting, and exact-decode contracts. This is the broad-coverage
// companion to the single-configuration conformance suite in
// core_scheme_test.cpp.

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <numeric>
#include <tuple>

#include "core/core.hpp"
#include "data/synthetic.hpp"
#include "linalg/vector_ops.hpp"
#include "opt/logistic.hpp"
#include "stats/rng.hpp"

namespace coupon::core {
namespace {

using Config = std::tuple<const char*, std::size_t, std::size_t, std::size_t>;

std::string config_name(const ::testing::TestParamInfo<Config>& info) {
  const auto [kind, n, m, r] = info.param;
  std::string name = kind;
  name.erase(std::remove(name.begin(), name.end(), '_'), name.end());
  name[0] = static_cast<char>(std::toupper(name[0]));
  return name + "_n" + std::to_string(n) + "_m" + std::to_string(m) + "_r" +
         std::to_string(r);
}

class SchemeSweepTest : public ::testing::TestWithParam<Config> {};

TEST_P(SchemeSweepTest, EndToEndDecodeIsExactAcrossConfigurations) {
  const auto [kind, n, m, r] = GetParam();
  stats::Rng rng(1000 + 31 * n + 7 * m + r);
  data::SyntheticConfig dconf;
  dconf.num_features = 5;
  const auto problem = data::generate_logreg(m, dconf, rng);
  PerExampleSource source(problem.dataset);

  SchemeConfig config{n, m, r, true};
  auto scheme = SchemeRegistry::instance().create(kind, config, rng);
  // Random placements must cover before training can start; redraw as a
  // deployment would.
  for (int attempt = 0;
       attempt < 128 && !scheme->placement().covers_all_examples();
       ++attempt) {
    scheme = SchemeRegistry::instance().create(kind, config, rng);
  }
  ASSERT_TRUE(scheme->placement().covers_all_examples());

  std::vector<double> w(5);
  for (auto& v : w) {
    v = rng.normal();
  }
  std::vector<double> serial(5);
  opt::logistic_gradient(problem.dataset, w, serial);
  linalg::scal(static_cast<double>(m), serial);

  // Three shuffled delivery orders per configuration.
  for (int trial = 0; trial < 3; ++trial) {
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    rng.shuffle(order);
    auto collector = scheme->make_collector();
    for (std::size_t i : order) {
      if (collector->ready()) {
        break;
      }
      const auto msg = scheme->encode(i, source, w);
      collector->offer(i, msg.meta, msg.payload);
    }
    ASSERT_TRUE(collector->ready())
        << config_name({GetParam(), 0}) << " trial " << trial;
    std::vector<double> decoded(5);
    collector->decode_sum(decoded);
    EXPECT_LT(linalg::max_abs_diff(decoded, serial),
              1e-6 * (1.0 + linalg::max_abs(serial)))
        << config_name({GetParam(), 0}) << " trial " << trial;
    EXPECT_LE(collector->workers_heard(), n);
    EXPECT_GE(collector->units_received(),
              static_cast<double>(collector->workers_heard()));
  }
}

TEST_P(SchemeSweepTest, ComputationalLoadNeverExceedsConfiguredR) {
  const auto [kind, n, m, r] = GetParam();
  stats::Rng rng(2000 + 31 * n + 7 * m + r);
  SchemeConfig config{n, m, r, true};
  auto scheme = SchemeRegistry::instance().create(kind, config, rng);
  if (std::string_view(kind) == "uncoded") {
    // Uncoded's load is ceil(m/n) by construction, independent of r.
    EXPECT_EQ(scheme->computational_load(), (m + n - 1) / n);
  } else {
    EXPECT_LE(scheme->computational_load(), r);
  }
}

// Grid: m == n configurations, legal for every scheme family
// (CR and FR require m == n; FR additionally r | n — the grid keeps
// r dividing n).
std::vector<Config> square_configs() {
  std::vector<Config> configs;
  for (const char* kind :
       {"uncoded", "bcc", "simple_random", "cr", "fr"}) {
    for (std::size_t n : {8u, 12u, 24u}) {
      for (std::size_t r : {2u, 4u}) {
        configs.emplace_back(kind, n, n, r);
      }
    }
  }
  return configs;
}

INSTANTIATE_TEST_SUITE_P(SquareConfigs, SchemeSweepTest,
                         ::testing::ValuesIn(square_configs()),
                         config_name);

// Rectangular (m != n) configurations for the schemes that support them.
INSTANTIATE_TEST_SUITE_P(
    RectangularConfigs, SchemeSweepTest,
    ::testing::Values(
        std::make_tuple("uncoded", 5u, 20u, 1u),
        std::make_tuple("uncoded", 7u, 23u, 1u),
        std::make_tuple("bcc", 30u, 10u, 3u),
        std::make_tuple("bcc", 40u, 17u, 5u),
        std::make_tuple("bcc", 16u, 64u, 16u),
        std::make_tuple("simple_random", 50u, 12u, 3u),
        std::make_tuple("simple_random", 25u, 9u, 4u)),
    config_name);

}  // namespace
}  // namespace coupon::core
