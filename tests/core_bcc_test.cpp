// Deep tests for the Batched Coupon's Collector scheme: placement law,
// the coupon-collector recovery threshold (Theorem 1), coverage-failure
// probability, zero-padding equivalence, and the coverage-seeding
// extension.

#include <gtest/gtest.h>

#include <cmath>

#include "core/bcc.hpp"
#include "core/theory.hpp"
#include "data/synthetic.hpp"
#include "linalg/vector_ops.hpp"
#include "opt/logistic.hpp"
#include "stats/rng.hpp"
#include "stats/summary.hpp"

namespace coupon::core {
namespace {

// Builds an int64 meta vector inline (std::span cannot bind a brace list).
std::vector<std::int64_t> mv(std::initializer_list<std::int64_t> v) {
  return std::vector<std::int64_t>(v);
}

TEST(Bcc, PlacementIsTheChosenBatch) {
  stats::Rng rng(1);
  BccScheme scheme(20, 20, 5, /*seed_first_batches=*/false, rng);
  EXPECT_EQ(scheme.num_batches(), 4u);
  data::BatchPartition partition(20, 5);
  for (std::size_t i = 0; i < 20; ++i) {
    const std::size_t b = scheme.batch_of_worker(i);
    EXPECT_LT(b, 4u);
    const auto expected = partition.indices(b);
    const auto& actual = scheme.placement().worker(i);
    ASSERT_EQ(actual.size(), expected.size());
    for (std::size_t k = 0; k < expected.size(); ++k) {
      EXPECT_EQ(actual[k], expected[k]);
    }
  }
}

TEST(Bcc, BatchChoicesAreUniform) {
  // Chi-square-style check: each batch picked n/B times on average.
  stats::Rng rng(2);
  const std::size_t n = 40000, m = 40000, r = 10000;  // B = 4
  BccScheme scheme(n, m, r, false, rng);
  std::vector<std::size_t> counts(4, 0);
  for (std::size_t i = 0; i < n; ++i) {
    ++counts[scheme.batch_of_worker(i)];
  }
  for (std::size_t b = 0; b < 4; ++b) {
    EXPECT_NEAR(static_cast<double>(counts[b]), n / 4.0,
                5.0 * std::sqrt(n / 4.0));
  }
}

TEST(Bcc, RequiresEnoughWorkersToCover) {
  stats::Rng rng(3);
  // B = ceil(10/2) = 5 batches but only 4 workers.
  EXPECT_THROW(BccScheme(4, 10, 2, false, rng), AssertionError);
}

TEST(Bcc, ExpectedRecoveryThresholdIsBHB) {
  stats::Rng rng(4);
  BccScheme scheme(100, 100, 10, false, rng);  // B = 10
  ASSERT_TRUE(scheme.expected_recovery_threshold().has_value());
  EXPECT_NEAR(*scheme.expected_recovery_threshold(),
              10.0 * theory::harmonic(10), 1e-12);
}

TEST(Bcc, EmpiricalRecoveryThresholdMatchesTheorem1) {
  // Draw fresh placements and random arrival orders; the mean number of
  // workers consumed until coverage must approach B * H_B = 5 * H_5
  // ≈ 11.417 (n is large enough for truncation to be negligible).
  const std::size_t n = 400, m = 20, r = 4;  // B = 5
  const double expected = theory::k_bcc(m, r);
  stats::Rng rng(5);
  stats::OnlineStats k_stats;
  for (int trial = 0; trial < 3000; ++trial) {
    BccScheme scheme(n, m, r, false, rng);
    auto collector = scheme.make_collector();
    for (std::size_t i = 0; i < n && !collector->ready(); ++i) {
      collector->offer(i, scheme.message_meta(i), {});
    }
    ASSERT_TRUE(collector->ready());
    k_stats.add(static_cast<double>(collector->workers_heard()));
  }
  EXPECT_NEAR(k_stats.mean(), expected, 4.0 * k_stats.sem());
  EXPECT_NEAR(k_stats.mean(), expected, 0.35);
}

TEST(Bcc, CommunicationLoadEqualsRecoveryThreshold) {
  // Eq. 14: every message is one gradient unit, so L == K sample-by-sample.
  stats::Rng rng(6);
  BccScheme scheme(60, 12, 3, false, rng);
  auto collector = scheme.make_collector();
  for (std::size_t i = 0; i < 60 && !collector->ready(); ++i) {
    collector->offer(i, scheme.message_meta(i), {});
  }
  ASSERT_TRUE(collector->ready());
  EXPECT_DOUBLE_EQ(collector->units_received(),
                   static_cast<double>(collector->workers_heard()));
}

TEST(Bcc, DuplicateBatchIsDiscardedButCounted) {
  stats::Rng rng(7);
  BccScheme scheme(8, 8, 2, /*seed_first_batches=*/true, rng);  // B = 4
  auto collector = scheme.make_collector();
  // Workers 0..3 hold batches 0..3 under seeding. Offer batch 0 twice via
  // two different hypothetical workers.
  EXPECT_TRUE(collector->offer(0, mv({0}), {}));
  EXPECT_FALSE(collector->offer(5, mv({0}), {}));  // duplicate coupon
  EXPECT_EQ(collector->workers_heard(), 2u);
  EXPECT_DOUBLE_EQ(collector->units_received(), 2.0);
  EXPECT_FALSE(collector->ready());
}

TEST(Bcc, SeededPlacementGuaranteesCoverage) {
  stats::Rng rng(8);
  for (int trial = 0; trial < 50; ++trial) {
    BccScheme scheme(6, 12, 2, /*seed_first_batches=*/true, rng);  // B = 6
    for (std::size_t b = 0; b < 6; ++b) {
      EXPECT_EQ(scheme.batch_of_worker(b), b);
    }
    EXPECT_TRUE(scheme.placement().covers_all_examples());
  }
}

TEST(Bcc, RandomPlacementCanMissBatches) {
  // With n == B the probability of covering every batch is B!/B^B, so
  // misses must show up in a modest number of trials (B = 4: ~90% miss).
  stats::Rng rng(9);
  int misses = 0;
  for (int trial = 0; trial < 100; ++trial) {
    BccScheme scheme(4, 8, 2, false, rng);
    misses += scheme.placement().covers_all_examples() ? 0 : 1;
  }
  EXPECT_GT(misses, 50);
}

TEST(Bcc, CoverageFailureProbabilityMatchesMonteCarlo) {
  const std::size_t n = 8, batches = 4;
  const double analytic = BccScheme::coverage_failure_probability(n, batches);
  stats::Rng rng(10);
  int failures = 0;
  const int trials = 40000;
  for (int t = 0; t < trials; ++t) {
    std::vector<bool> seen(batches, false);
    for (std::size_t i = 0; i < n; ++i) {
      seen[rng.uniform_int(batches)] = true;
    }
    failures += std::all_of(seen.begin(), seen.end(),
                            [](bool b) { return b; })
                    ? 0
                    : 1;
  }
  const double mc = static_cast<double>(failures) / trials;
  EXPECT_NEAR(analytic, mc, 0.01);
}

TEST(Bcc, CoverageFailureProbabilityEdgeCases) {
  EXPECT_DOUBLE_EQ(BccScheme::coverage_failure_probability(10, 1), 0.0);
  // One worker, two batches: always misses one.
  EXPECT_NEAR(BccScheme::coverage_failure_probability(1, 2), 1.0, 1e-12);
  // Failure probability decays with n (the "sufficiently large n" of
  // Theorem 1).
  double prev = 1.0;
  for (std::size_t n : {5u, 10u, 20u, 40u, 80u}) {
    const double p = BccScheme::coverage_failure_probability(n, 5);
    EXPECT_LE(p, prev + 1e-12);
    prev = p;
  }
  EXPECT_LT(prev, 1e-5);
}

TEST(Bcc, ZeroPaddedLastBatchDecodesExactly) {
  // m = 10, r = 4: batch 2 holds only examples {8, 9}. The decoded sum
  // must equal the serial sum over all 10 examples regardless.
  stats::Rng rng(11);
  data::SyntheticConfig dconf;
  dconf.num_features = 5;
  const auto prob = data::generate_logreg(10, dconf, rng);
  PerExampleSource source(prob.dataset);

  BccScheme scheme(12, 10, 4, /*seed_first_batches=*/true, rng);
  std::vector<double> w(5);
  for (auto& v : w) {
    v = rng.normal();
  }
  auto collector = scheme.make_collector();
  for (std::size_t i = 0; i < 12 && !collector->ready(); ++i) {
    const auto msg = scheme.encode(i, source, w);
    collector->offer(i, msg.meta, msg.payload);
  }
  ASSERT_TRUE(collector->ready());
  std::vector<double> decoded(5);
  collector->decode_sum(decoded);

  std::vector<double> full(5);
  opt::logistic_gradient(prob.dataset, w, full);
  linalg::scal(10.0, full);
  EXPECT_LT(linalg::max_abs_diff(decoded, full), 1e-10);
}

TEST(Bcc, MessageIsSumOfBatchGradients) {
  stats::Rng rng(12);
  data::SyntheticConfig dconf;
  dconf.num_features = 4;
  const auto prob = data::generate_logreg(6, dconf, rng);
  PerExampleSource source(prob.dataset);
  BccScheme scheme(6, 6, 2, /*seed_first_batches=*/true, rng);  // B = 3
  std::vector<double> w = {0.1, -0.2, 0.3, 0.4};

  const auto msg = scheme.encode(0, source, w);  // worker 0 -> batch 0
  std::vector<double> expected(4, 0.0), one(4);
  for (std::size_t j : {0u, 1u}) {
    opt::partial_gradient(prob.dataset, j, w, one);
    linalg::axpy(1.0, one, expected);
  }
  EXPECT_LT(linalg::max_abs_diff(msg.payload, expected), 1e-12);
  EXPECT_EQ(msg.meta, (std::vector<std::int64_t>{0}));
}


TEST(Bcc, PartialDecodeSumsOnlyCoveredBatches) {
  stats::Rng rng(14);
  data::SyntheticConfig dconf;
  dconf.num_features = 4;
  const auto prob = data::generate_logreg(10, dconf, rng);
  PerExampleSource source(prob.dataset);
  // m = 10, r = 4: batches {0..3}, {4..7}, {8,9} (2 units).
  BccScheme scheme(12, 10, 4, /*seed_first_batches=*/true, rng);
  std::vector<double> w(4);
  for (auto& v : w) {
    v = rng.normal();
  }

  auto collector = scheme.make_collector();
  ASSERT_TRUE(collector->supports_partial_decode());

  // Nothing covered yet: zero partial sum.
  std::vector<double> partial(4, 99.0);
  EXPECT_EQ(collector->decode_partial_sum(partial), 0u);
  EXPECT_DOUBLE_EQ(linalg::max_abs(partial), 0.0);

  // Deliver batch 1 (workers seeded: worker 1 holds batch 1) and the
  // short batch 2 (worker 2).
  for (std::size_t i : {1u, 2u}) {
    const auto msg = scheme.encode(i, source, w);
    collector->offer(i, msg.meta, msg.payload);
  }
  EXPECT_FALSE(collector->ready());
  const std::size_t covered = collector->decode_partial_sum(partial);
  EXPECT_EQ(covered, 6u);  // 4 units + 2 units

  std::vector<double> expected(4, 0.0);
  const std::vector<std::size_t> idx = {4, 5, 6, 7, 8, 9};
  opt::partial_gradient_sum(prob.dataset, idx, w, expected, false);
  EXPECT_LT(linalg::max_abs_diff(partial, expected), 1e-12);
}

class BccSweepTest : public ::testing::TestWithParam<
                         std::tuple<std::size_t, std::size_t>> {};

TEST_P(BccSweepTest, CollectorTerminatesAndCountsAreConsistent) {
  const auto [m, r] = GetParam();
  const std::size_t batches = (m + r - 1) / r;
  const std::size_t n = std::max<std::size_t>(batches * 8, 16);
  stats::Rng rng(13 + m + r);
  BccScheme scheme(n, m, r, false, rng);
  auto collector = scheme.make_collector();
  std::size_t offered = 0;
  for (std::size_t i = 0; i < n && !collector->ready(); ++i) {
    collector->offer(i, scheme.message_meta(i), {});
    ++offered;
  }
  if (collector->ready()) {
    EXPECT_EQ(collector->workers_heard(), offered);
    EXPECT_GE(offered, batches);  // needs at least one worker per batch
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BccSweepTest,
    ::testing::Values(std::make_tuple(10, 1), std::make_tuple(10, 3),
                      std::make_tuple(10, 10), std::make_tuple(50, 10),
                      std::make_tuple(100, 10), std::make_tuple(100, 33),
                      std::make_tuple(101, 10)));

}  // namespace
}  // namespace coupon::core
