// Tests for the message-passing substrate: serialization, the blocking
// queue, and the in-process network.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "comm/comm.hpp"
#include "stats/rng.hpp"
#include "util/assert.hpp"

namespace coupon::comm {
namespace {

Message sample_message() {
  Message m;
  m.source = 3;
  m.dest = 0;
  m.tag = kTagGradient;
  m.iteration = 17;
  m.meta = {4, -2, 1000000007};
  m.payload = {1.5, -2.25, 0.0, 1e-300, 1e300};
  return m;
}

// --- serialization ------------------------------------------------------------

TEST(Serialization, RoundTripPreservesEverything) {
  const Message m = sample_message();
  Message out;
  ASSERT_TRUE(deserialize(serialize(m), out));
  EXPECT_EQ(out, m);
}

TEST(Serialization, EmptyArraysRoundTrip) {
  Message m;
  m.source = 0;
  m.dest = 1;
  m.tag = kTagShutdown;
  Message out;
  ASSERT_TRUE(deserialize(serialize(m), out));
  EXPECT_EQ(out, m);
}

TEST(Serialization, WireSizeMatchesBufferSize) {
  const Message m = sample_message();
  EXPECT_EQ(serialize(m).size(), m.wire_size());
}

TEST(Serialization, RandomMessagesFuzzRoundTrip) {
  stats::Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    Message m;
    m.source = static_cast<std::int32_t>(rng.uniform_int(100));
    m.dest = static_cast<std::int32_t>(rng.uniform_int(100));
    m.tag = static_cast<std::int32_t>(rng.uniform_int(10));
    m.iteration = static_cast<std::int64_t>(rng.uniform_int(1000));
    m.meta.resize(rng.uniform_int(20));
    for (auto& v : m.meta) {
      v = static_cast<std::int64_t>(rng.next_u64());
    }
    m.payload.resize(rng.uniform_int(50));
    for (auto& v : m.payload) {
      v = rng.normal();
    }
    Message out;
    ASSERT_TRUE(deserialize(serialize(m), out));
    EXPECT_EQ(out, m);
  }
}

TEST(Serialization, RejectsTruncationAtEveryLength) {
  const auto bytes = serialize(sample_message());
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    std::vector<std::uint8_t> cut(bytes.begin(), bytes.begin() + len);
    Message out;
    EXPECT_FALSE(deserialize(cut, out)) << "accepted truncation at " << len;
  }
}

TEST(Serialization, RejectsBadMagic) {
  auto bytes = serialize(sample_message());
  bytes[0] ^= 0xFF;
  Message out;
  EXPECT_FALSE(deserialize(bytes, out));
}

TEST(Serialization, RejectsTrailingGarbage) {
  auto bytes = serialize(sample_message());
  bytes.push_back(0);
  Message out;
  EXPECT_FALSE(deserialize(bytes, out));
}

TEST(Serialization, FailedParseLeavesOutputUntouched) {
  Message out = sample_message();
  const Message before = out;
  Message bogus;
  bogus.meta = {1, 2, 3};
  auto bytes = serialize(bogus);
  bytes.resize(bytes.size() - 1);
  EXPECT_FALSE(deserialize(bytes, out));
  EXPECT_EQ(out, before);
}

// --- blocking queue -------------------------------------------------------------

TEST(BlockingQueue, FifoOrder) {
  BlockingQueue<int> q;
  q.push(1);
  q.push(2);
  q.push(3);
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_EQ(q.pop().value(), 3);
}

TEST(BlockingQueue, TryPopOnEmptyReturnsNullopt) {
  BlockingQueue<int> q;
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(BlockingQueue, PopForTimesOut) {
  BlockingQueue<int> q;
  const auto result = q.pop_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(result.has_value());
}

TEST(BlockingQueue, CloseRejectsPushAndDrains) {
  BlockingQueue<int> q;
  q.push(7);
  q.close();
  EXPECT_FALSE(q.push(8));
  EXPECT_EQ(q.pop().value(), 7);  // drains existing items
  EXPECT_FALSE(q.pop().has_value());
  EXPECT_TRUE(q.closed());
}

TEST(BlockingQueue, CloseWakesBlockedConsumer) {
  BlockingQueue<int> q;
  std::atomic<bool> woke{false};
  std::thread consumer([&] {
    EXPECT_FALSE(q.pop().has_value());
    woke = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  consumer.join();
  EXPECT_TRUE(woke.load());
}

TEST(BlockingQueue, ConcurrentProducersConsumersConserveItems) {
  BlockingQueue<int> q;
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 1000;
  std::atomic<long> sum{0};
  std::atomic<int> received{0};

  std::vector<std::thread> consumers;
  for (int c = 0; c < 3; ++c) {
    consumers.emplace_back([&] {
      while (auto v = q.pop()) {
        sum += *v;
        ++received;
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        q.push(p * kPerProducer + i);
      }
    });
  }
  for (auto& t : producers) {
    t.join();
  }
  // Wait for drain, then close to release consumers.
  while (q.size() > 0) {
    std::this_thread::yield();
  }
  q.close();
  for (auto& t : consumers) {
    t.join();
  }
  const long n = kProducers * kPerProducer;
  EXPECT_EQ(received.load(), n);
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

// --- network --------------------------------------------------------------------

TEST(InProcNetwork, DeliversToDestination) {
  InProcNetwork net(3);
  Message m = sample_message();
  m.source = 1;
  m.dest = 2;
  ASSERT_TRUE(net.send(m));
  const auto got = net.recv(2);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, m);
}

TEST(InProcNetwork, InOrderDeliveryPerSender) {
  InProcNetwork net(2);
  for (int i = 0; i < 10; ++i) {
    Message m;
    m.source = 0;
    m.dest = 1;
    m.iteration = i;
    net.send(std::move(m));
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(net.recv(1)->iteration, i);
  }
}

TEST(InProcNetwork, TryRecvEmptyMailbox) {
  InProcNetwork net(2);
  EXPECT_FALSE(net.try_recv(0).has_value());
}

TEST(InProcNetwork, RecvForTimesOut) {
  InProcNetwork net(1);
  EXPECT_FALSE(net.recv_for(0, std::chrono::milliseconds(10)).has_value());
}

TEST(InProcNetwork, StatsCountTraffic) {
  InProcNetwork net(2);
  Message m = sample_message();
  m.source = 0;
  m.dest = 1;
  net.send(m);
  net.send(m);
  ASSERT_TRUE(net.recv(1).has_value());
  const auto s0 = net.stats(0);
  const auto s1 = net.stats(1);
  EXPECT_EQ(s0.messages_sent, 2u);
  EXPECT_EQ(s0.bytes_sent, 2 * m.wire_size());
  EXPECT_EQ(s0.payload_units_sent, 2 * m.payload.size());
  EXPECT_EQ(s1.messages_received, 1u);
}

TEST(InProcNetwork, BadRankAsserts) {
  InProcNetwork net(2);
  Message m;
  m.source = 0;
  m.dest = 5;
  EXPECT_THROW(net.send(std::move(m)), coupon::AssertionError);
  Message m2;
  m2.source = -1;
  m2.dest = 0;
  EXPECT_THROW(net.send(std::move(m2)), coupon::AssertionError);
}

TEST(InProcNetwork, SendToClosedRankReturnsFalse) {
  InProcNetwork net(2);
  net.close_rank(1);
  Message m;
  m.source = 0;
  m.dest = 1;
  EXPECT_FALSE(net.send(std::move(m)));
}

// --- status pops (EOF distinct from timeout) ------------------------------------

TEST(BlockingQueue, StatusPopDistinguishesItemTimeoutClosed) {
  BlockingQueue<int> q;
  q.push(5);
  int out = 0;
  EXPECT_EQ(q.pop(out), PopStatus::kItem);
  EXPECT_EQ(out, 5);
  EXPECT_EQ(q.pop_for(std::chrono::milliseconds(10), out),
            PopStatus::kTimeout);
  q.push(6);
  q.close();
  EXPECT_EQ(q.pop(out), PopStatus::kItem);  // drains before reporting closed
  EXPECT_EQ(out, 6);
  EXPECT_EQ(q.pop(out), PopStatus::kClosed);
  EXPECT_EQ(q.pop_for(std::chrono::milliseconds(10), out),
            PopStatus::kClosed);
}

TEST(InProcNetwork, StatusRecvDistinguishesTimeoutFromClosed) {
  InProcNetwork net(2);
  Message out;
  EXPECT_EQ(net.recv_for(1, std::chrono::milliseconds(10), out),
            PopStatus::kTimeout);
  Message m = sample_message();
  m.source = 0;
  m.dest = 1;
  net.send(m);
  EXPECT_EQ(net.recv(1, out), PopStatus::kItem);
  EXPECT_EQ(out, m);
  net.close_rank(1);
  EXPECT_EQ(net.recv(1, out), PopStatus::kClosed);
  EXPECT_EQ(net.recv_for(1, std::chrono::milliseconds(10), out),
            PopStatus::kClosed);
}

// --- Transport seam -------------------------------------------------------------

TEST(InProcessTransport, RoundTripBothDirections) {
  InProcNetwork net(2);
  InProcessTransport master(net, 0);
  InProcessTransport worker(net, 1);
  EXPECT_EQ(master.kind(), "inproc");
  EXPECT_EQ(master.rank(), 0u);
  EXPECT_EQ(master.num_ranks(), 2u);

  Message m = sample_message();
  m.dest = 1;
  ASSERT_TRUE(master.send(std::move(m)));
  RecvEvent at_worker = worker.recv();
  ASSERT_EQ(at_worker.status, RecvStatus::kMessage);
  EXPECT_EQ(at_worker.peer, 0u);  // send stamps the sender's rank
  EXPECT_EQ(at_worker.message.source, 0);

  Message reply = sample_message();
  reply.dest = 0;
  ASSERT_TRUE(worker.send(std::move(reply)));
  RecvEvent at_master = master.recv_for(std::chrono::milliseconds(1000));
  ASSERT_EQ(at_master.status, RecvStatus::kMessage);
  EXPECT_EQ(at_master.peer, 1u);
}

TEST(InProcessTransport, TimeoutAndCloseStatuses) {
  InProcNetwork net(2);
  InProcessTransport master(net, 0);
  EXPECT_EQ(master.recv_for(std::chrono::milliseconds(10)).status,
            RecvStatus::kTimeout);
  master.close();
  EXPECT_EQ(master.recv().status, RecvStatus::kClosed);
}

// --- framed stream transport ----------------------------------------------------

TEST(TcpTransport, FramingRoundTripOverSocketpair) {
  if (!socketpair_available()) {
    GTEST_SKIP() << "no AF_UNIX socketpair in this sandbox";
  }
  int fds[2];
  ASSERT_TRUE(make_stream_socketpair(fds));
  const Message m = sample_message();
  ASSERT_TRUE(send_frame(fds[0], m));
  Message out;
  ASSERT_EQ(recv_frame(fds[1], std::chrono::milliseconds(1000), out),
            FrameStatus::kMessage);
  EXPECT_EQ(out, m);
  // Timeout with no bytes pending, then EOF when the peer closes.
  EXPECT_EQ(recv_frame(fds[1], std::chrono::milliseconds(10), out),
            FrameStatus::kTimeout);
  ::close(fds[0]);
  EXPECT_EQ(recv_frame(fds[1], std::chrono::milliseconds(1000), out),
            FrameStatus::kClosed);
  ::close(fds[1]);
}

TEST(TcpTransport, FramingFuzzSizesOverSocketpair) {
  if (!socketpair_available()) {
    GTEST_SKIP() << "no AF_UNIX socketpair in this sandbox";
  }
  int fds[2];
  ASSERT_TRUE(make_stream_socketpair(fds));
  stats::Rng rng(7);
  std::thread sender([&] {
    stats::Rng sender_rng(7);
    for (int trial = 0; trial < 50; ++trial) {
      Message m;
      m.dest = 0;
      m.tag = kTagGradient;
      m.iteration = trial;
      m.meta.resize(sender_rng.uniform_int(64));
      for (auto& v : m.meta) {
        v = static_cast<std::int64_t>(sender_rng.next_u64());
      }
      m.payload.resize(sender_rng.uniform_int(4096));
      for (auto& v : m.payload) {
        v = sender_rng.normal();
      }
      ASSERT_TRUE(send_frame(fds[0], m));
    }
    ::close(fds[0]);
  });
  for (int trial = 0; trial < 50; ++trial) {
    Message out;
    ASSERT_EQ(recv_frame(fds[1], std::chrono::milliseconds(5000), out),
              FrameStatus::kMessage);
    EXPECT_EQ(out.iteration, trial);
  }
  Message out;
  EXPECT_EQ(recv_frame(fds[1], std::chrono::milliseconds(5000), out),
            FrameStatus::kClosed);
  sender.join();
  ::close(fds[1]);
}

TEST(TcpTransport, MasterWorkerRoundTripAndPeerClosed) {
  if (!socketpair_available()) {
    GTEST_SKIP() << "no AF_UNIX socketpair in this sandbox";
  }
  int a[2];
  int b[2];
  ASSERT_TRUE(make_stream_socketpair(a));
  ASSERT_TRUE(make_stream_socketpair(b));
  auto master = TcpTransport::master({a[0], b[0]});
  auto worker1 = TcpTransport::worker(a[1], 1, 3);
  auto worker2 = TcpTransport::worker(b[1], 2, 3);
  EXPECT_EQ(master->kind(), "tcp");
  EXPECT_EQ(master->num_ranks(), 3u);

  Message m = sample_message();
  m.dest = 2;
  ASSERT_TRUE(master->send(std::move(m)));
  RecvEvent at_worker = worker2->recv();
  ASSERT_EQ(at_worker.status, RecvStatus::kMessage);
  EXPECT_EQ(at_worker.message.source, 0);

  Message reply = sample_message();
  reply.dest = 0;
  ASSERT_TRUE(worker1->send(std::move(reply)));
  RecvEvent at_master = master->recv_for(std::chrono::milliseconds(5000));
  ASSERT_EQ(at_master.status, RecvStatus::kMessage);
  EXPECT_EQ(at_master.peer, 1u);
  EXPECT_EQ(at_master.message.source, 1);

  EXPECT_EQ(master->recv_for(std::chrono::milliseconds(10)).status,
            RecvStatus::kTimeout);

  // Worker 2 goes away: the master sees exactly one kPeerClosed for it.
  worker2->close();
  RecvEvent eof = master->recv_for(std::chrono::milliseconds(5000));
  ASSERT_EQ(eof.status, RecvStatus::kPeerClosed);
  EXPECT_EQ(eof.peer, 2u);

  // Master closes: the remaining worker observes kClosed.
  master->close();
  EXPECT_EQ(worker1->recv().status, RecvStatus::kClosed);
  EXPECT_EQ(master->recv().status, RecvStatus::kClosed);
}

TEST(TcpTransport, StatsCountTraffic) {
  if (!socketpair_available()) {
    GTEST_SKIP() << "no AF_UNIX socketpair in this sandbox";
  }
  int fds[2];
  ASSERT_TRUE(make_stream_socketpair(fds));
  auto master = TcpTransport::master({fds[0]});
  auto worker = TcpTransport::worker(fds[1], 1, 2);
  Message m = sample_message();
  const std::size_t wire = m.wire_size();
  const std::size_t units = m.payload.size();
  m.dest = 1;
  ASSERT_TRUE(master->send(std::move(m)));
  ASSERT_EQ(worker->recv().status, RecvStatus::kMessage);
  EXPECT_EQ(master->stats().messages_sent, 1u);
  EXPECT_EQ(master->stats().bytes_sent, wire);
  EXPECT_EQ(master->stats().payload_units_sent, units);
  EXPECT_EQ(worker->stats().messages_received, 1u);
}

TEST(TcpTransport, LoopbackListenerRoundTrip) {
  if (!tcp_loopback_available()) {
    GTEST_SKIP() << "no loopback TCP in this sandbox";
  }
  auto listener = TcpListener::open();
  ASSERT_NE(listener, nullptr);
  std::thread client([port = listener->port()] {
    const int fd = tcp_connect_loopback(port, std::chrono::milliseconds(5000));
    ASSERT_GE(fd, 0);
    auto worker = TcpTransport::worker(fd, 1, 2);
    RecvEvent event = worker->recv();
    ASSERT_EQ(event.status, RecvStatus::kMessage);
    Message reply = event.message;
    reply.dest = 0;
    ASSERT_TRUE(worker->send(std::move(reply)));
  });
  const int accepted = listener->accept_fd(std::chrono::milliseconds(5000));
  ASSERT_GE(accepted, 0);
  auto master = TcpTransport::master({accepted});
  Message m = sample_message();
  m.dest = 1;
  ASSERT_TRUE(master->send(std::move(m)));
  RecvEvent echoed = master->recv_for(std::chrono::milliseconds(5000));
  ASSERT_EQ(echoed.status, RecvStatus::kMessage);
  EXPECT_EQ(echoed.peer, 1u);
  client.join();
}

TEST(InProcNetwork, CrossThreadPingPong) {
  InProcNetwork net(2);
  std::thread peer([&net] {
    auto m = net.recv(1);
    ASSERT_TRUE(m.has_value());
    Message reply;
    reply.source = 1;
    reply.dest = 0;
    reply.iteration = m->iteration + 1;
    net.send(std::move(reply));
  });
  Message ping;
  ping.source = 0;
  ping.dest = 1;
  ping.iteration = 41;
  net.send(std::move(ping));
  const auto pong = net.recv(0);
  ASSERT_TRUE(pong.has_value());
  EXPECT_EQ(pong->iteration, 42);
  peer.join();
}

}  // namespace
}  // namespace coupon::comm
