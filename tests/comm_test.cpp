// Tests for the message-passing substrate: serialization, the blocking
// queue, and the in-process network.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "comm/comm.hpp"
#include "stats/rng.hpp"
#include "util/assert.hpp"

namespace coupon::comm {
namespace {

Message sample_message() {
  Message m;
  m.source = 3;
  m.dest = 0;
  m.tag = kTagGradient;
  m.iteration = 17;
  m.meta = {4, -2, 1000000007};
  m.payload = {1.5, -2.25, 0.0, 1e-300, 1e300};
  return m;
}

// --- serialization ------------------------------------------------------------

TEST(Serialization, RoundTripPreservesEverything) {
  const Message m = sample_message();
  Message out;
  ASSERT_TRUE(deserialize(serialize(m), out));
  EXPECT_EQ(out, m);
}

TEST(Serialization, EmptyArraysRoundTrip) {
  Message m;
  m.source = 0;
  m.dest = 1;
  m.tag = kTagShutdown;
  Message out;
  ASSERT_TRUE(deserialize(serialize(m), out));
  EXPECT_EQ(out, m);
}

TEST(Serialization, WireSizeMatchesBufferSize) {
  const Message m = sample_message();
  EXPECT_EQ(serialize(m).size(), m.wire_size());
}

TEST(Serialization, RandomMessagesFuzzRoundTrip) {
  stats::Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    Message m;
    m.source = static_cast<std::int32_t>(rng.uniform_int(100));
    m.dest = static_cast<std::int32_t>(rng.uniform_int(100));
    m.tag = static_cast<std::int32_t>(rng.uniform_int(10));
    m.iteration = static_cast<std::int64_t>(rng.uniform_int(1000));
    m.meta.resize(rng.uniform_int(20));
    for (auto& v : m.meta) {
      v = static_cast<std::int64_t>(rng.next_u64());
    }
    m.payload.resize(rng.uniform_int(50));
    for (auto& v : m.payload) {
      v = rng.normal();
    }
    Message out;
    ASSERT_TRUE(deserialize(serialize(m), out));
    EXPECT_EQ(out, m);
  }
}

TEST(Serialization, RejectsTruncationAtEveryLength) {
  const auto bytes = serialize(sample_message());
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    std::vector<std::uint8_t> cut(bytes.begin(), bytes.begin() + len);
    Message out;
    EXPECT_FALSE(deserialize(cut, out)) << "accepted truncation at " << len;
  }
}

TEST(Serialization, RejectsBadMagic) {
  auto bytes = serialize(sample_message());
  bytes[0] ^= 0xFF;
  Message out;
  EXPECT_FALSE(deserialize(bytes, out));
}

TEST(Serialization, RejectsTrailingGarbage) {
  auto bytes = serialize(sample_message());
  bytes.push_back(0);
  Message out;
  EXPECT_FALSE(deserialize(bytes, out));
}

TEST(Serialization, FailedParseLeavesOutputUntouched) {
  Message out = sample_message();
  const Message before = out;
  Message bogus;
  bogus.meta = {1, 2, 3};
  auto bytes = serialize(bogus);
  bytes.resize(bytes.size() - 1);
  EXPECT_FALSE(deserialize(bytes, out));
  EXPECT_EQ(out, before);
}

// --- blocking queue -------------------------------------------------------------

TEST(BlockingQueue, FifoOrder) {
  BlockingQueue<int> q;
  q.push(1);
  q.push(2);
  q.push(3);
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_EQ(q.pop().value(), 3);
}

TEST(BlockingQueue, TryPopOnEmptyReturnsNullopt) {
  BlockingQueue<int> q;
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(BlockingQueue, PopForTimesOut) {
  BlockingQueue<int> q;
  const auto result = q.pop_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(result.has_value());
}

TEST(BlockingQueue, CloseRejectsPushAndDrains) {
  BlockingQueue<int> q;
  q.push(7);
  q.close();
  EXPECT_FALSE(q.push(8));
  EXPECT_EQ(q.pop().value(), 7);  // drains existing items
  EXPECT_FALSE(q.pop().has_value());
  EXPECT_TRUE(q.closed());
}

TEST(BlockingQueue, CloseWakesBlockedConsumer) {
  BlockingQueue<int> q;
  std::atomic<bool> woke{false};
  std::thread consumer([&] {
    EXPECT_FALSE(q.pop().has_value());
    woke = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  consumer.join();
  EXPECT_TRUE(woke.load());
}

TEST(BlockingQueue, ConcurrentProducersConsumersConserveItems) {
  BlockingQueue<int> q;
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 1000;
  std::atomic<long> sum{0};
  std::atomic<int> received{0};

  std::vector<std::thread> consumers;
  for (int c = 0; c < 3; ++c) {
    consumers.emplace_back([&] {
      while (auto v = q.pop()) {
        sum += *v;
        ++received;
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        q.push(p * kPerProducer + i);
      }
    });
  }
  for (auto& t : producers) {
    t.join();
  }
  // Wait for drain, then close to release consumers.
  while (q.size() > 0) {
    std::this_thread::yield();
  }
  q.close();
  for (auto& t : consumers) {
    t.join();
  }
  const long n = kProducers * kPerProducer;
  EXPECT_EQ(received.load(), n);
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

// --- network --------------------------------------------------------------------

TEST(InProcNetwork, DeliversToDestination) {
  InProcNetwork net(3);
  Message m = sample_message();
  m.source = 1;
  m.dest = 2;
  ASSERT_TRUE(net.send(m));
  const auto got = net.recv(2);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, m);
}

TEST(InProcNetwork, InOrderDeliveryPerSender) {
  InProcNetwork net(2);
  for (int i = 0; i < 10; ++i) {
    Message m;
    m.source = 0;
    m.dest = 1;
    m.iteration = i;
    net.send(std::move(m));
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(net.recv(1)->iteration, i);
  }
}

TEST(InProcNetwork, TryRecvEmptyMailbox) {
  InProcNetwork net(2);
  EXPECT_FALSE(net.try_recv(0).has_value());
}

TEST(InProcNetwork, RecvForTimesOut) {
  InProcNetwork net(1);
  EXPECT_FALSE(net.recv_for(0, std::chrono::milliseconds(10)).has_value());
}

TEST(InProcNetwork, StatsCountTraffic) {
  InProcNetwork net(2);
  Message m = sample_message();
  m.source = 0;
  m.dest = 1;
  net.send(m);
  net.send(m);
  ASSERT_TRUE(net.recv(1).has_value());
  const auto s0 = net.stats(0);
  const auto s1 = net.stats(1);
  EXPECT_EQ(s0.messages_sent, 2u);
  EXPECT_EQ(s0.bytes_sent, 2 * m.wire_size());
  EXPECT_EQ(s0.payload_units_sent, 2 * m.payload.size());
  EXPECT_EQ(s1.messages_received, 1u);
}

TEST(InProcNetwork, BadRankAsserts) {
  InProcNetwork net(2);
  Message m;
  m.source = 0;
  m.dest = 5;
  EXPECT_THROW(net.send(std::move(m)), coupon::AssertionError);
  Message m2;
  m2.source = -1;
  m2.dest = 0;
  EXPECT_THROW(net.send(std::move(m2)), coupon::AssertionError);
}

TEST(InProcNetwork, SendToClosedRankReturnsFalse) {
  InProcNetwork net(2);
  net.close_rank(1);
  Message m;
  m.source = 0;
  m.dest = 1;
  EXPECT_FALSE(net.send(std::move(m)));
}

TEST(InProcNetwork, CrossThreadPingPong) {
  InProcNetwork net(2);
  std::thread peer([&net] {
    auto m = net.recv(1);
    ASSERT_TRUE(m.has_value());
    Message reply;
    reply.source = 1;
    reply.dest = 0;
    reply.iteration = m->iteration + 1;
    net.send(std::move(reply));
  });
  Message ping;
  ping.source = 0;
  ping.dest = 1;
  ping.iteration = 41;
  net.send(std::move(ping));
  const auto pong = net.recv(0);
  ASSERT_TRUE(pong.has_value());
  EXPECT_EQ(pong->iteration, 42);
  peer.join();
}

}  // namespace
}  // namespace coupon::comm
