// The registry-wide scheme conformance suite: every contract a scheme
// must honor to plug into the engine and the simulator, auto-run for
// EVERY registered scheme by iterating `SchemeRegistry::instance()
// .names()` over the shared fixture (tests/scheme_test_fixture.hpp —
// also the backbone of core_collector_reset_test, which owns the deep
// reset-vs-fresh trajectory checks). Registering a new scheme enrolls
// it here with no test edits:
//
//   * placement invariants — full coverage, per-worker load bounds,
//     no within-worker duplicates, total replication budget;
//   * reset-vs-fresh equivalence (smoke level; the reset suite goes deep);
//   * the DESIGN.md §7 allocation budget — zero steady-state heap
//     allocations through a warm `IterationKernel` (this binary replaces
//     the global allocation functions with counting wrappers, same
//     mechanism as simulate_alloc_test);
//   * decode correctness against the unit-ordered serial gradient sum
//     over randomized arrival orders with duplicate re-deliveries —
//     bitwise for the slot-in-unit-order schemes, 5-ulp-scale tolerance
//     for the rest;
//   * gc_cyclic's headline guarantee, exhaustively: EVERY arrival set of
//     size >= n - s decodes bitwise-equal to the serial sum;
//   * sgc's approximate-recovery contract: the decode is an unbiased
//     estimator of the full gradient sum whose per-coordinate variance
//     matches theory.hpp's closed form, and the capability flag is
//     declared by exactly the schemes whose decode is stochastic.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <numeric>
#include <string>
#include <vector>

#include "core/core.hpp"
#include "core/theory.hpp"
#include "scheme_test_fixture.hpp"
#include "simulate/simulate.hpp"
#include "stats/rng.hpp"

namespace {

std::atomic<std::size_t> g_allocations{0};

void* counted_alloc(std::size_t size, std::size_t align) {
  ++g_allocations;
  void* p = align <= alignof(std::max_align_t)
                ? std::malloc(size)
                // aligned_alloc requires size to be a multiple of align.
                : std::aligned_alloc(align, (size + align - 1) / align * align);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

}  // namespace

void* operator new(std::size_t size) {
  return counted_alloc(size, alignof(std::max_align_t));
}
void* operator new[](std::size_t size) {
  return counted_alloc(size, alignof(std::max_align_t));
}
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_alloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace coupon::core {
namespace {

using test_fixture::SchemeFixture;
using test_fixture::build_fixture;
using test_fixture::expect_identical_trajectories;
using test_fixture::kDim;
using test_fixture::kLoad;
using test_fixture::kUnits;
using test_fixture::kWorkers;

/// Decode sums per-unit slots in unit order 0..m-1 (or worker order ==
/// unit order for uncoded at m == n), which reproduces the fixture's
/// serial reference bit-for-bit. The remaining exact schemes sum in a
/// different association (per-batch / per-block / prefix components) and
/// get a tolerance instead; "sgc" decodes a stochastic estimate and has
/// its own statistical tests below.
bool decode_is_bitwise_serial(const std::string& name) {
  return name == "uncoded" || name == "simple_random" || name == "gc_cyclic";
}

/// Drives `collector` with every worker's message (payloads on) in the
/// given order and returns the decoded sum.
std::vector<double> offer_all_and_decode(const SchemeFixture& fixture,
                                         Collector& collector,
                                         const std::vector<std::size_t>& order) {
  for (const std::size_t worker : order) {
    const auto& msg = fixture.messages[worker];
    collector.offer(worker, msg.meta, msg.payload);
  }
  EXPECT_TRUE(collector.ready());
  std::vector<double> decoded(kDim);
  collector.decode_sum(decoded);
  return decoded;
}

// --- placement invariants ---------------------------------------------------

TEST(SchemeConformance, PlacementCoversAllUnitsWithinTheLoadBudget) {
  for (const auto& name : SchemeRegistry::instance().names()) {
    SCOPED_TRACE(name);
    const SchemeFixture fixture = build_fixture(name);
    const data::Placement& placement = fixture.scheme->placement();

    EXPECT_TRUE(placement.covers_all_examples());
    // uncoded ignores the requested load (its realized load is m/n = 1
    // here); every redundant scheme realizes exactly r.
    const std::size_t expected_load =
        name == "uncoded" ? kUnits / kWorkers : kLoad;
    EXPECT_EQ(placement.computational_load(), expected_load);
    EXPECT_EQ(placement.total_assigned(), kWorkers * expected_load);

    for (std::size_t i = 0; i < kWorkers; ++i) {
      auto units = placement.worker(i);
      EXPECT_LE(units.size(), expected_load) << "worker " << i;
      std::sort(units.begin(), units.end());
      EXPECT_EQ(std::adjacent_find(units.begin(), units.end()), units.end())
          << "worker " << i << " holds a unit twice";
      for (const std::size_t u : units) {
        EXPECT_LT(u, kUnits);
      }
    }
  }
}

TEST(SchemeConformance, ReplicationBalancedSchemesReplicateEveryUnitExactly) {
  // The r-fold replication families place every unit on exactly r
  // workers — for sgc that balance is what makes its estimator unbiased
  // under exchangeable arrivals, so it is load-bearing, not cosmetic.
  for (const char* name : {"cr", "fr", "gc_cyclic", "gc_nested", "sgc"}) {
    SCOPED_TRACE(name);
    const SchemeFixture fixture = build_fixture(name);
    for (const std::size_t multiplicity :
         fixture.scheme->placement().example_multiplicities()) {
      EXPECT_EQ(multiplicity, kLoad);
    }
  }
}

// --- reset-vs-fresh (smoke; core_collector_reset_test goes deep) ------------

TEST(SchemeConformance, ResetCollectorMatchesFreshOneShuffledRound) {
  for (const auto& name : SchemeRegistry::instance().names()) {
    SCOPED_TRACE(name);
    const SchemeFixture fixture = build_fixture(name);
    std::vector<std::size_t> order(kWorkers);
    std::iota(order.begin(), order.end(), 0);
    stats::Rng rng(0xC04F + name.size());
    rng.shuffle(order);

    const auto reused = fixture.scheme->make_collector();
    expect_identical_trajectories(fixture, *fixture.scheme->make_collector(),
                                  *reused, order, /*with_payloads=*/true);
    reused->reset();
    expect_identical_trajectories(fixture, *fixture.scheme->make_collector(),
                                  *reused, order, /*with_payloads=*/true);
  }
}

// --- the allocation budget --------------------------------------------------

/// Steady-state allocation count of `iterations` kernel runs after
/// `warmup` warm-up runs (warm-up lets reusable buffers reach capacity).
std::size_t steady_state_allocations(const Scheme& scheme,
                                     const simulate::ClusterConfig& cluster,
                                     std::size_t warmup,
                                     std::size_t iterations) {
  const auto model = simulate::make_latency_model(cluster, scheme.num_workers());
  simulate::IterationKernel kernel(scheme, cluster);
  stats::Rng rng(0xA110C);
  double checksum = 0.0;
  for (std::size_t t = 0; t < warmup; ++t) {
    checksum += kernel.run(*model, t, rng).total_time;
  }
  const std::size_t before = g_allocations.load();
  for (std::size_t t = warmup; t < warmup + iterations; ++t) {
    checksum += kernel.run(*model, t, rng).total_time;
  }
  const std::size_t after = g_allocations.load();
  EXPECT_GE(checksum, 0.0);  // keep the loop observable
  return after - before;
}

TEST(SchemeConformance, EverySchemeIteratesAllocationFreeOnceWarm) {
  simulate::ClusterConfig cluster;
  cluster.compute_shift = 1e-3;
  cluster.compute_straggle = 100.0;
  cluster.unit_transfer_seconds = 2e-3;
  cluster.broadcast_seconds = 1e-4;

  SchemeConfig config;
  config.num_workers = kWorkers;
  config.num_units = kUnits;
  config.load = kLoad;
  for (const auto& name : SchemeRegistry::instance().names()) {
    SCOPED_TRACE(name);
    stats::Rng build_rng(7);
    const auto scheme =
        SchemeRegistry::instance().create(name, config, build_rng);
    EXPECT_EQ(steady_state_allocations(*scheme, cluster, /*warmup=*/3,
                                       /*iterations=*/150),
              0u);
  }
}

// --- decode correctness -----------------------------------------------------

TEST(SchemeConformance, ExactSchemesDecodeTheSerialGradientSum) {
  for (const auto& name : SchemeRegistry::instance().names()) {
    if (SchemeRegistry::instance().find(name)->caps.approximate_recovery) {
      continue;  // stochastic decodes are gated statistically below
    }
    SCOPED_TRACE(name);
    const SchemeFixture fixture = build_fixture(name);
    const bool bitwise = decode_is_bitwise_serial(name);

    stats::Rng rng(0xDEC0DE + name.size());
    const auto collector = fixture.scheme->make_collector();
    for (std::size_t trial = 0; trial < 8; ++trial) {
      std::vector<std::size_t> order(kWorkers);
      std::iota(order.begin(), order.end(), 0);
      rng.shuffle(order);
      const std::size_t duplicates = rng.uniform_int(4);
      for (std::size_t d = 0; d < duplicates; ++d) {
        order.push_back(rng.uniform_int(kWorkers));
      }

      collector->reset();
      const auto decoded = offer_all_and_decode(fixture, *collector, order);
      for (std::size_t c = 0; c < kDim; ++c) {
        if (bitwise) {
          EXPECT_EQ(decoded[c], fixture.serial_sum[c]) << "coordinate " << c;
        } else {
          EXPECT_NEAR(decoded[c], fixture.serial_sum[c], 1e-9)
              << "coordinate " << c;
        }
      }
    }
  }
}

TEST(SchemeConformance, GcCyclicDecodesBitwiseOnEveryQualifyingArrivalSet) {
  // The acceptance guarantee, checked exhaustively: for EVERY arrival set
  // of at least n - s distinct workers (s = r - 1 stragglers tolerated),
  // the decode equals the unit-ordered serial sum bit for bit. At
  // n = 12, s = 2 that is C(12,10) + C(12,11) + C(12,12) = 79 subsets.
  const SchemeFixture fixture = build_fixture("gc_cyclic");
  const std::size_t threshold = kWorkers - (kLoad - 1);
  const auto collector = fixture.scheme->make_collector();

  std::size_t subsets = 0;
  for (std::uint32_t mask = 0; mask < (1u << kWorkers); ++mask) {
    if (static_cast<std::size_t>(std::popcount(mask)) < threshold) {
      continue;
    }
    ++subsets;
    collector->reset();
    for (std::size_t worker = 0; worker < kWorkers; ++worker) {
      if ((mask >> worker) & 1u) {
        const auto& msg = fixture.messages[worker];
        collector->offer(worker, msg.meta, msg.payload);
      }
    }
    ASSERT_TRUE(collector->ready()) << "mask " << mask;
    std::vector<double> decoded(kDim);
    collector->decode_sum(decoded);
    EXPECT_EQ(decoded, fixture.serial_sum) << "mask " << mask;
  }
  EXPECT_EQ(subsets, 79u);
}

// --- sgc: the approximate-recovery contract ---------------------------------

TEST(SchemeConformance, ApproximateRecoveryIsDeclaredByExactlyTheStochastic) {
  for (const auto& name : SchemeRegistry::instance().names()) {
    const auto* entry = SchemeRegistry::instance().find(name);
    ASSERT_NE(entry, nullptr) << name;
    EXPECT_EQ(entry->caps.approximate_recovery, name == "sgc") << name;
  }
}

TEST(SchemeConformance, SgcDecodeIsUnbiasedWithTheTheoryVariance) {
  // The estimator: Y = (n / (r k)) * sum of the k = n - r + 1 arrived
  // per-worker sums. Over a uniform k-subset of workers (the arrival set
  // of an exchangeable-latency iteration), sampling-without-replacement
  // gives E[Y] = (1/r) * sum_i s_i (= the full gradient sum, since the
  // balanced placement replicates every unit exactly r times) and
  // Var[Y_c] = sgc_estimator_variance_factor(n, r, k) * pop-variance of
  // the per-worker sums' coordinate c. Both are checked against a
  // Monte-Carlo sweep of random arrival sets at 5 standard errors.
  const SchemeFixture fixture = build_fixture("sgc");
  const std::size_t quota = kWorkers - kLoad + 1;

  // Per-worker sums exactly as the collector consumes them: the encoded
  // payloads themselves.
  std::vector<std::vector<double>> worker_sums;
  for (const auto& msg : fixture.messages) {
    ASSERT_EQ(msg.payload.size(), kDim);
    worker_sums.emplace_back(msg.payload.begin(), msg.payload.end());
  }

  // E[Y] = (1/r) sum_i s_i, which must also be the true gradient sum up
  // to roundoff (each unit contributes to exactly r worker sums).
  std::vector<double> exact_mean(kDim, 0.0);
  for (const auto& s : worker_sums) {
    for (std::size_t c = 0; c < kDim; ++c) {
      exact_mean[c] += s[c];
    }
  }
  std::vector<double> pop_mean(kDim);
  for (std::size_t c = 0; c < kDim; ++c) {
    pop_mean[c] = exact_mean[c] / static_cast<double>(kWorkers);
    exact_mean[c] /= static_cast<double>(kLoad);
    EXPECT_NEAR(exact_mean[c], fixture.serial_sum[c], 1e-9)
        << "coordinate " << c;
  }
  std::vector<double> theory_var(kDim, 0.0);
  const double factor =
      theory::sgc_estimator_variance_factor(kWorkers, kLoad, quota);
  for (std::size_t c = 0; c < kDim; ++c) {
    double pop_var = 0.0;
    for (const auto& s : worker_sums) {
      pop_var += (s[c] - pop_mean[c]) * (s[c] - pop_mean[c]);
    }
    theory_var[c] = factor * pop_var / static_cast<double>(kWorkers);
  }

  // Monte Carlo over uniform arrival sets: shuffling all n workers and
  // offering in that order keeps exactly the first `quota` distinct
  // arrivals — a uniform quota-subset. One collector, reset per trial.
  constexpr std::size_t kMcTrials = 4000;
  stats::Rng rng(0x5AC);
  const auto collector = fixture.scheme->make_collector();
  std::vector<std::size_t> order(kWorkers);
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> decoded(kDim);
  std::vector<double> mc_sum(kDim, 0.0), mc_sumsq(kDim, 0.0);
  for (std::size_t trial = 0; trial < kMcTrials; ++trial) {
    rng.shuffle(order);
    collector->reset();
    for (const std::size_t worker : order) {
      const auto& msg = fixture.messages[worker];
      collector->offer(worker, msg.meta, msg.payload);
    }
    ASSERT_TRUE(collector->ready());
    EXPECT_EQ(collector->workers_heard(), quota);
    collector->decode_sum(decoded);
    for (std::size_t c = 0; c < kDim; ++c) {
      mc_sum[c] += decoded[c];
      mc_sumsq[c] += decoded[c] * decoded[c];
    }
  }
  for (std::size_t c = 0; c < kDim; ++c) {
    const double mc_mean = mc_sum[c] / kMcTrials;
    const double mc_var =
        mc_sumsq[c] / kMcTrials - mc_mean * mc_mean;
    // Unbiasedness at 5 standard errors of the Monte-Carlo mean.
    EXPECT_NEAR(mc_mean, exact_mean[c],
                5.0 * std::sqrt(theory_var[c] / kMcTrials) + 1e-12)
        << "coordinate " << c;
    // The variance estimate concentrates ~ var * sqrt(2/T) (bounded
    // support); 30% is > 6 of those standard errors at T = 4000.
    EXPECT_NEAR(mc_var, theory_var[c], 0.3 * theory_var[c] + 1e-15)
        << "coordinate " << c;
  }
}

TEST(SchemeConformance, SgcPartialDecodeTargetsTheFullSum) {
  // decode_partial_sum reports all m units covered because the estimator
  // already targets the FULL gradient sum — the engine's covered/m
  // rescale must be the identity, never a double-scaling.
  const SchemeFixture fixture = build_fixture("sgc");
  const auto collector = fixture.scheme->make_collector();
  std::vector<double> partial(kDim);
  EXPECT_EQ(collector->decode_partial_sum(partial), 0u);
  EXPECT_EQ(partial, std::vector<double>(kDim, 0.0));

  for (std::size_t worker = 0; worker < 3; ++worker) {
    const auto& msg = fixture.messages[worker];
    collector->offer(worker, msg.meta, msg.payload);
  }
  ASSERT_FALSE(collector->ready());
  EXPECT_EQ(collector->decode_partial_sum(partial), kUnits);
  // Same estimator as decode_sum would produce at this arrival set:
  // scaled by n / (r * 3), already an unbiased full-sum estimate.
  for (std::size_t c = 0; c < kDim; ++c) {
    double s = 0.0;
    for (std::size_t worker = 0; worker < 3; ++worker) {
      s += fixture.messages[worker].payload[c];
    }
    EXPECT_DOUBLE_EQ(partial[c],
                     s * static_cast<double>(kWorkers) /
                         (static_cast<double>(kLoad) * 3.0));
  }
}

}  // namespace
}  // namespace coupon::core
