// The Collector::reset() contract (scheme.hpp): for EVERY registered
// scheme, a reset-and-reused collector must be indistinguishable from a
// freshly built one under any offer sequence — same ready() trajectory,
// same kept/discarded verdicts, same workers_heard/units_received, and
// bit-identical decode_sum / decode_partial_sum output. The simulator's
// allocation-free hot path reuses one collector per run, so a scheme
// whose reset leaks state would silently corrupt every iteration after
// the first; this test is what keeps that failure mode loud.

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "core/gradient_source.hpp"
#include "core/scheme_registry.hpp"
#include "data/batching.hpp"
#include "data/synthetic.hpp"
#include "stats/rng.hpp"

namespace coupon::core {
namespace {

// n = 12, m = 12, r = 3 satisfies every registered capability constraint:
// m == n (CR, FR), r | n (FR), n >= ceil(m/r) (BCC).
constexpr std::size_t kWorkers = 12;
constexpr std::size_t kUnits = 12;
constexpr std::size_t kLoad = 3;
constexpr std::size_t kExamplesPerUnit = 2;
constexpr std::size_t kTrials = 12;

struct SchemeFixture {
  std::unique_ptr<Scheme> scheme;
  std::vector<comm::Message> messages;  // encode(i) cached per worker
};

SchemeFixture build_fixture(const std::string& name) {
  SchemeConfig config;
  config.num_workers = kWorkers;
  config.num_units = kUnits;
  config.load = kLoad;

  stats::Rng rng(0xC0FFEE);
  SchemeFixture fixture;
  fixture.scheme = SchemeRegistry::instance().create(name, config, rng);

  data::SyntheticConfig dconf;
  dconf.num_features = 5;
  const auto problem =
      data::generate_logreg(kUnits * kExamplesPerUnit, dconf, rng);
  data::BatchPartition partition(kUnits * kExamplesPerUnit,
                                 kExamplesPerUnit);
  GroupedBatchSource source(problem.dataset, partition);

  std::vector<double> w(dconf.num_features);
  for (std::size_t j = 0; j < w.size(); ++j) {
    w[j] = 0.1 * static_cast<double>(j + 1);
  }
  fixture.messages.reserve(kWorkers);
  for (std::size_t i = 0; i < kWorkers; ++i) {
    fixture.messages.push_back(fixture.scheme->encode(i, source, w));
  }
  return fixture;
}

/// Feeds both collectors the same offer sequence, asserting identical
/// observable behavior after every single offer.
void expect_identical_trajectories(const SchemeFixture& fixture,
                                   Collector& fresh, Collector& reused,
                                   const std::vector<std::size_t>& order,
                                   bool with_payloads) {
  std::vector<double> sum_fresh(5), sum_reused(5);  // dim = num_features
  for (const std::size_t worker : order) {
    const auto& msg = fixture.messages[worker];
    const std::span<const double> payload =
        with_payloads ? std::span<const double>(msg.payload)
                      : std::span<const double>();
    const bool kept_fresh = fresh.offer(worker, msg.meta, payload);
    const bool kept_reused = reused.offer(worker, msg.meta, payload);
    EXPECT_EQ(kept_fresh, kept_reused) << "worker " << worker;
    EXPECT_EQ(fresh.ready(), reused.ready()) << "worker " << worker;
    EXPECT_EQ(fresh.workers_heard(), reused.workers_heard());
    EXPECT_DOUBLE_EQ(fresh.units_received(), reused.units_received());
    if (with_payloads && fresh.supports_partial_decode()) {
      const std::size_t units_fresh = fresh.decode_partial_sum(sum_fresh);
      const std::size_t units_reused = reused.decode_partial_sum(sum_reused);
      EXPECT_EQ(units_fresh, units_reused);
      EXPECT_EQ(sum_fresh, sum_reused);  // bitwise: same op order
    }
  }
  ASSERT_EQ(fresh.ready(), reused.ready());
  if (with_payloads && fresh.ready()) {
    fresh.decode_sum(sum_fresh);
    reused.decode_sum(sum_reused);
    EXPECT_EQ(sum_fresh, sum_reused);  // bitwise: same op order
  }
}

TEST(CollectorReset, ReusedCollectorMatchesFreshUnderRandomOfferOrders) {
  for (const auto& name : SchemeRegistry::instance().names()) {
    SCOPED_TRACE(name);
    const SchemeFixture fixture = build_fixture(name);

    stats::Rng shuffle_rng(0x5E7 + name.size());
    const auto reused = fixture.scheme->make_collector();
    for (std::size_t trial = 0; trial < kTrials; ++trial) {
      // Random order over all workers, plus a random tail of duplicate
      // re-deliveries (the FIFO may hand the master the same worker's
      // message again after recovery).
      std::vector<std::size_t> order(kWorkers);
      std::iota(order.begin(), order.end(), 0);
      shuffle_rng.shuffle(order);
      const std::size_t duplicates = shuffle_rng.uniform_int(4);
      for (std::size_t d = 0; d < duplicates; ++d) {
        order.push_back(shuffle_rng.uniform_int(kWorkers));
      }

      const auto fresh = fixture.scheme->make_collector();
      reused->reset();
      expect_identical_trajectories(fixture, *fresh, *reused, order,
                                    /*with_payloads=*/true);
    }
  }
}

TEST(CollectorReset, MetaOnlyOffersResetCleanlyToo) {
  // The simulator's path: payload-less offers. A reset must also clear
  // whatever bookkeeping meta-only offers left behind.
  for (const auto& name : SchemeRegistry::instance().names()) {
    SCOPED_TRACE(name);
    const SchemeFixture fixture = build_fixture(name);

    stats::Rng shuffle_rng(0xBEE + name.size());
    const auto reused = fixture.scheme->make_collector();
    for (std::size_t trial = 0; trial < kTrials; ++trial) {
      std::vector<std::size_t> order(kWorkers);
      std::iota(order.begin(), order.end(), 0);
      shuffle_rng.shuffle(order);
      // Truncate at a random prefix: resets must work from *any* state,
      // including mid-collection (not-yet-ready) ones.
      order.resize(1 + shuffle_rng.uniform_int(kWorkers));

      const auto fresh = fixture.scheme->make_collector();
      reused->reset();
      expect_identical_trajectories(fixture, *fresh, *reused, order,
                                    /*with_payloads=*/false);
    }
  }
}

TEST(CollectorReset, ResetAfterDecodeAllowsAFullSecondRound) {
  // End-to-end reuse: collect to ready, decode, reset, collect to ready
  // again in a different order — both decodes bit-identical to fresh
  // collectors fed the same orders.
  for (const auto& name : SchemeRegistry::instance().names()) {
    SCOPED_TRACE(name);
    const SchemeFixture fixture = build_fixture(name);
    const auto reused = fixture.scheme->make_collector();

    std::vector<std::size_t> forward(kWorkers);
    std::iota(forward.begin(), forward.end(), 0);
    std::vector<std::size_t> backward(forward.rbegin(), forward.rend());

    for (const auto& order : {forward, backward}) {
      const auto fresh = fixture.scheme->make_collector();
      reused->reset();
      expect_identical_trajectories(fixture, *fresh, *reused, order,
                                    /*with_payloads=*/true);
      ASSERT_TRUE(reused->ready());
    }
  }
}

}  // namespace
}  // namespace coupon::core
