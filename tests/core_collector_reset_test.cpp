// The Collector::reset() contract (scheme.hpp): for EVERY registered
// scheme, a reset-and-reused collector must be indistinguishable from a
// freshly built one under any offer sequence — same ready() trajectory,
// same kept/discarded verdicts, same workers_heard/units_received, and
// bit-identical decode_sum / decode_partial_sum output. The simulator's
// allocation-free hot path reuses one collector per run, so a scheme
// whose reset leaks state would silently corrupt every iteration after
// the first; this test is what keeps that failure mode loud.
//
// Scheme discovery, the fixture problem, and the per-offer trajectory
// comparison live in scheme_test_fixture.hpp, shared with the
// registry-wide conformance suite (core_scheme_conformance_test): every
// newly registered scheme is covered here automatically.

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "scheme_test_fixture.hpp"
#include "stats/rng.hpp"

namespace coupon::core {
namespace {

using test_fixture::SchemeFixture;
using test_fixture::build_fixture;
using test_fixture::expect_identical_trajectories;
using test_fixture::kTrials;
using test_fixture::kWorkers;

TEST(CollectorReset, ReusedCollectorMatchesFreshUnderRandomOfferOrders) {
  for (const auto& name : SchemeRegistry::instance().names()) {
    SCOPED_TRACE(name);
    const SchemeFixture fixture = build_fixture(name);

    stats::Rng shuffle_rng(0x5E7 + name.size());
    const auto reused = fixture.scheme->make_collector();
    for (std::size_t trial = 0; trial < kTrials; ++trial) {
      // Random order over all workers, plus a random tail of duplicate
      // re-deliveries (the FIFO may hand the master the same worker's
      // message again after recovery).
      std::vector<std::size_t> order(kWorkers);
      std::iota(order.begin(), order.end(), 0);
      shuffle_rng.shuffle(order);
      const std::size_t duplicates = shuffle_rng.uniform_int(4);
      for (std::size_t d = 0; d < duplicates; ++d) {
        order.push_back(shuffle_rng.uniform_int(kWorkers));
      }

      const auto fresh = fixture.scheme->make_collector();
      reused->reset();
      expect_identical_trajectories(fixture, *fresh, *reused, order,
                                    /*with_payloads=*/true);
    }
  }
}

TEST(CollectorReset, MetaOnlyOffersResetCleanlyToo) {
  // The simulator's path: payload-less offers. A reset must also clear
  // whatever bookkeeping meta-only offers left behind.
  for (const auto& name : SchemeRegistry::instance().names()) {
    SCOPED_TRACE(name);
    const SchemeFixture fixture = build_fixture(name);

    stats::Rng shuffle_rng(0xBEE + name.size());
    const auto reused = fixture.scheme->make_collector();
    for (std::size_t trial = 0; trial < kTrials; ++trial) {
      std::vector<std::size_t> order(kWorkers);
      std::iota(order.begin(), order.end(), 0);
      shuffle_rng.shuffle(order);
      // Truncate at a random prefix: resets must work from *any* state,
      // including mid-collection (not-yet-ready) ones.
      order.resize(1 + shuffle_rng.uniform_int(kWorkers));

      const auto fresh = fixture.scheme->make_collector();
      reused->reset();
      expect_identical_trajectories(fixture, *fresh, *reused, order,
                                    /*with_payloads=*/false);
    }
  }
}

TEST(CollectorReset, ResetAfterDecodeAllowsAFullSecondRound) {
  // End-to-end reuse: collect to ready, decode, reset, collect to ready
  // again in a different order — both decodes bit-identical to fresh
  // collectors fed the same orders.
  for (const auto& name : SchemeRegistry::instance().names()) {
    SCOPED_TRACE(name);
    const SchemeFixture fixture = build_fixture(name);
    const auto reused = fixture.scheme->make_collector();

    std::vector<std::size_t> forward(kWorkers);
    std::iota(forward.begin(), forward.end(), 0);
    std::vector<std::size_t> backward(forward.rbegin(), forward.rend());

    for (const auto& order : {forward, backward}) {
      const auto fresh = fixture.scheme->make_collector();
      reused->reset();
      expect_identical_trajectories(fixture, *fresh, *reused, order,
                                    /*with_payloads=*/true);
      ASSERT_TRUE(reused->ready());
    }
  }
}

}  // namespace
}  // namespace coupon::core
