// Demonstrates straggler mitigation on *real threads* with injected
// slowdowns: trains the same model with the uncoded, cyclic repetition,
// and BCC schemes while workers sleep shift-exponential delays, and
// reports wall-clock time and recovery thresholds. A miniature live
// version of the paper's EC2 experiment.
//
//   $ ./straggler_profile [--workers=24] [--shift_ms=2] [--straggle=0.5]

#include <cstdio>

#include "core/core.hpp"
#include "data/data.hpp"
#include "opt/opt.hpp"
#include "runtime/runtime.hpp"
#include "stats/rng.hpp"
#include "util/util.hpp"

int main(int argc, char** argv) {
  coupon::CliFlags flags;
  flags.add_int("workers", 24, "worker threads n (units m = n)")
      .add_int("features", 200, "feature dimension p")
      .add_int("load", 4, "computational load r (must divide n for FR)")
      .add_int("iterations", 15, "GD iterations")
      .add_double("shift_ms", 2.0, "deterministic delay per unit, ms")
      .add_double("straggle", 0.5, "straggle mu (smaller = heavier tail)")
      .add_int("seed", 21, "PRNG seed");
  if (!flags.parse(argc, argv)) {
    return 1;
  }
  const auto n = static_cast<std::size_t>(flags.get_int("workers"));
  const auto p = static_cast<std::size_t>(flags.get_int("features"));
  const auto r = static_cast<std::size_t>(flags.get_int("load"));
  const auto iterations =
      static_cast<std::size_t>(flags.get_int("iterations"));

  coupon::stats::Rng rng(static_cast<std::uint64_t>(flags.get_int("seed")));
  coupon::data::SyntheticConfig dconf;
  dconf.num_features = p;
  const auto problem = coupon::data::generate_logreg(n, dconf, rng);
  coupon::core::PerExampleSource source(problem.dataset);

  std::printf("Straggler profile: n = m = %zu, r = %zu, %zu iterations, "
              "injected delay ~ %.1f ms/unit + Exp tail (mu = %.2f)\n\n",
              n, r, iterations, flags.get_double("shift_ms"),
              flags.get_double("straggle"));

  coupon::AsciiTable table({"scheme", "wall time (s)", "K mean", "K max",
                            "final loss"});
  table.set_align(0, coupon::Align::kLeft);

  for (const char* kind : {"uncoded", "cr", "bcc"}) {
    coupon::stats::Rng scheme_rng(static_cast<std::uint64_t>(
        flags.get_int("seed")));
    coupon::core::SchemeConfig config;
    config.num_workers = n;
    config.num_units = n;
    config.load = r;
    config.bcc_seed_first_batches = true;
    auto scheme = coupon::core::SchemeRegistry::instance().create(
        kind, config, scheme_rng);

    coupon::runtime::ThreadCluster cluster(*scheme, source);
    coupon::opt::NesterovGradient optimizer(
        p, coupon::opt::LearningRateSchedule::constant(1.0));
    coupon::runtime::TrainOptions options;
    options.iterations = iterations;
    options.straggler.enabled = true;
    options.straggler.shift_ms_per_unit = flags.get_double("shift_ms");
    options.straggler.straggle = flags.get_double("straggle");

    const auto result = cluster.train(optimizer, options);
    table.add_row(
        {std::string(scheme->name()),
         coupon::format_double(result.elapsed_seconds, 3),
         coupon::format_double(result.workers_heard.mean(), 1),
         coupon::format_double(result.workers_heard.max(), 0),
         coupon::format_double(
             coupon::opt::logistic_loss(problem.dataset, result.weights),
             4)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nAll schemes compute the *same* exact gradient (equal final "
      "loss). BCC hears far\nfewer workers than CR at the same load r. "
      "Note that on this in-process cluster\nthere is no shared master "
      "ingress link, so uncoded's r-times-lighter per-worker\nload can "
      "still win on wall clock; the paper's EC2 regime (communication-"
      "dominated,\nserialized master bandwidth) is reproduced by "
      "compare_schemes and bench/fig4.\n");
  return 0;
}
