// Generalized BCC on a heterogeneous cluster (Section IV of the paper):
// computes the P2-optimal load allocation for a mixed fleet, compares it
// against the mu-proportional "load balancing" baseline, and prints the
// Theorem 2 sandwich around the measured coverage time.
//
//   $ ./heterogeneous_cluster [--slow=95] [--fast=5] [--examples=500] ...

#include <cmath>
#include <cstdio>
#include <numeric>

#include "core/hetero.hpp"
#include "core/theory.hpp"
#include "stats/rng.hpp"
#include "stats/summary.hpp"
#include "util/util.hpp"

int main(int argc, char** argv) {
  coupon::CliFlags flags;
  flags.add_int("slow", 95, "workers with straggle mu_slow")
      .add_int("fast", 5, "workers with straggle mu_fast")
      .add_double("mu_slow", 1.0, "straggle parameter of slow workers")
      .add_double("mu_fast", 20.0, "straggle parameter of fast workers")
      .add_double("shift", 20.0, "shift parameter a (same for all)")
      .add_int("examples", 500, "training examples m")
      .add_int("trials", 1500, "Monte Carlo trials")
      .add_int("seed", 4, "PRNG seed");
  if (!flags.parse(argc, argv)) {
    return 1;
  }
  namespace hetero = coupon::core::hetero;
  const auto slow = static_cast<std::size_t>(flags.get_int("slow"));
  const auto fast = static_cast<std::size_t>(flags.get_int("fast"));
  const auto m = static_cast<std::size_t>(flags.get_int("examples"));

  std::vector<hetero::WorkerProfile> workers;
  workers.reserve(slow + fast);
  for (std::size_t i = 0; i < slow; ++i) {
    workers.push_back({flags.get_double("shift"), flags.get_double("mu_slow")});
  }
  for (std::size_t i = 0; i < fast; ++i) {
    workers.push_back({flags.get_double("shift"), flags.get_double("mu_fast")});
  }

  // P2 allocation for the Remark 6 target s = floor(m log m).
  const auto s = static_cast<std::size_t>(
      std::floor(static_cast<double>(m) * std::log(static_cast<double>(m))));
  const auto alloc = hetero::allocate_loads(workers, s, m);
  const auto lb = hetero::load_balanced_assignment(workers, m);

  std::printf("Heterogeneous cluster: %zu slow + %zu fast workers, "
              "m = %zu examples\n", slow, fast, m);
  std::printf("P2 target s = floor(m log m) = %zu; allocator deadline "
              "tau = %.2f\n", s, alloc.deadline);
  std::printf("generalized BCC loads: slow %zu, fast %zu (sum %zu)\n",
              alloc.loads.front(), alloc.loads.back(),
              std::accumulate(alloc.loads.begin(), alloc.loads.end(),
                              std::size_t{0}));
  std::printf("LB loads:              slow %zu, fast %zu (sum %zu)\n\n",
              lb.front(), lb.back(),
              std::accumulate(lb.begin(), lb.end(), std::size_t{0}));

  coupon::stats::Rng rng(static_cast<std::uint64_t>(flags.get_int("seed")));
  const auto trials = static_cast<std::size_t>(flags.get_int("trials"));
  coupon::stats::OnlineStats bcc_time, lb_time;
  std::size_t failures = 0;
  for (std::size_t t = 0; t < trials; ++t) {
    const auto outcome =
        hetero::simulate_generalized_bcc(workers, alloc.loads, m, rng);
    if (!outcome.covered) {
      ++failures;
      continue;
    }
    bcc_time.add(outcome.time);
    lb_time.add(hetero::simulate_load_balanced(workers, lb, rng));
  }

  // Theorem 2 sandwich, evaluated by Monte Carlo.
  const double c = hetero::theorem2_c(workers, m);
  const auto s_upper = static_cast<std::size_t>(std::floor(
      c * static_cast<double>(m) * std::log(static_cast<double>(m))));
  const auto lower_alloc = hetero::allocate_loads(workers, m, m);
  const double lower =
      hetero::mc_expected_t_hat(workers, lower_alloc.loads, m, 2000, rng);
  const auto upper_alloc = hetero::allocate_loads(workers, s_upper, m);
  const double upper =
      hetero::mc_expected_t_hat(workers, upper_alloc.loads, s_upper, 2000,
                                rng) +
      1.0;

  coupon::AsciiTable table({"quantity", "time"});
  table.set_align(0, coupon::Align::kLeft);
  table.add_row({"Theorem 2 lower bound  min E[T^(m)]",
                 coupon::format_double(lower, 2)});
  table.add_row({"generalized BCC mean coverage time",
                 coupon::format_double(bcc_time.mean(), 2)});
  table.add_row({"Theorem 2 upper bound  min E[T^(c m log m)] + 1",
                 coupon::format_double(upper, 2)});
  table.add_row({"LB mean completion time",
                 coupon::format_double(lb_time.mean(), 2)});
  std::fputs(table.render().c_str(), stdout);

  std::printf("\nreduction vs LB: %s (paper Fig. 5: 29.28%%); coverage "
              "failures %zu/%zu\n",
              coupon::format_percent(1.0 - bcc_time.mean() / lb_time.mean(),
                                     2)
                  .c_str(),
              failures, trials);
  return 0;
}
