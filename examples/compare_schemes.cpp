// Compares all five gradient-coding schemes on the same simulated
// cluster: recovery threshold K, communication load L, per-phase times,
// and total running time — an interactive version of the paper's Fig. 4
// with the two extra schemes (simple randomized, fractional repetition)
// included.
//
//   $ ./compare_schemes [--workers=50] [--units=50] [--load=10] ...

#include <cstdio>

#include "simulate/simulate.hpp"
#include "util/util.hpp"

int main(int argc, char** argv) {
  coupon::CliFlags flags;
  flags.add_int("workers", 50, "number of workers n")
      .add_int("units", 50, "number of gradient units m")
      .add_int("load", 10, "computational load r (units per worker)")
      .add_int("iterations", 100, "GD iterations")
      .add_double("transfer_ms", 3.2, "master ingress ms per gradient unit")
      .add_double("compute_ms", 1.0, "deterministic compute ms per unit")
      .add_double("straggle", 950.0, "compute straggle parameter mu")
      .add_int("seed", 11, "PRNG seed");
  if (!flags.parse(argc, argv)) {
    return 1;
  }

  coupon::simulate::ScenarioConfig scenario;
  scenario.name = "custom cluster";
  scenario.num_workers = static_cast<std::size_t>(flags.get_int("workers"));
  scenario.num_units = static_cast<std::size_t>(flags.get_int("units"));
  scenario.load = static_cast<std::size_t>(flags.get_int("load"));
  scenario.iterations =
      static_cast<std::size_t>(flags.get_int("iterations"));
  scenario.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  scenario.cluster.unit_transfer_seconds =
      flags.get_double("transfer_ms") * 1e-3;
  scenario.cluster.compute_shift = flags.get_double("compute_ms") * 1e-3;
  scenario.cluster.compute_straggle = flags.get_double("straggle");

  std::vector<std::string> kinds = {"uncoded", "simple_random", "cr", "bcc"};
  // FR needs r | n.
  if (scenario.num_workers % scenario.load == 0 &&
      scenario.num_units == scenario.num_workers) {
    kinds.insert(kinds.begin() + 3, "fr");
  }

  const auto rows = coupon::simulate::run_scenario(scenario, kinds);

  std::printf("Scheme comparison — n = %zu workers, m = %zu units, "
              "r = %zu, %zu iterations\n\n",
              scenario.num_workers, scenario.num_units, scenario.load,
              scenario.iterations);
  coupon::AsciiTable table({"scheme", "K (mean)", "L (mean units)",
                            "comm (s)", "comp (s)", "total (s)",
                            "vs uncoded"});
  table.set_align(0, coupon::Align::kLeft);
  const auto& baseline = rows.front();
  for (const auto& row : rows) {
    table.add_row(
        {row.scheme, coupon::format_double(row.recovery_threshold, 1),
         coupon::format_double(row.mean_units, 1),
         coupon::format_double(row.comm_time, 3),
         coupon::format_double(row.compute_time, 3),
         coupon::format_double(row.total_time, 3),
         row.scheme == baseline.scheme
             ? std::string("—")
             : coupon::format_percent(
                   coupon::simulate::speedup_fraction(row, baseline))});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("\nReading the table: BCC pairs the near-minimal K of the "
              "randomized scheme with the\nunit-sized messages of the "
              "coded schemes — lowest L, hence lowest total time in\nthe "
              "communication-dominated regime.\n");
  return 0;
}
