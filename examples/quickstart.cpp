// Quickstart: train a logistic-regression model with straggler-robust
// distributed gradient descent using the BCC scheme on a real
// multi-threaded master/worker cluster.
//
//   $ ./quickstart [--workers=16] [--examples=400] [--features=100]
//
// Walkthrough of the public API:
//   1. generate (or load) a dataset            -> data::Dataset
//   2. group examples into gradient units      -> data::BatchPartition +
//                                                  core::GroupedBatchSource
//   3. pick a scheme and computational load    -> core::SchemeRegistry
//   4. spin up the cluster and an optimizer    -> runtime::ThreadCluster +
//                                                  opt::NesterovGradient
//   5. train                                   -> cluster.train(...)

#include <cstdio>

#include "core/core.hpp"
#include "data/data.hpp"
#include "opt/opt.hpp"
#include "runtime/runtime.hpp"
#include "stats/rng.hpp"
#include "util/util.hpp"

int main(int argc, char** argv) {
  coupon::CliFlags flags;
  flags.add_int("workers", 16, "number of worker threads")
      .add_int("examples", 400, "training examples to generate")
      .add_int("features", 100, "feature dimension p")
      .add_int("iterations", 50, "GD iterations")
      .add_int("load", 4, "computational load r, in units per worker")
      .add_int("seed", 1, "PRNG seed");
  if (!flags.parse(argc, argv)) {
    return 1;
  }
  const auto n = static_cast<std::size_t>(flags.get_int("workers"));
  const auto m = static_cast<std::size_t>(flags.get_int("examples"));
  const auto p = static_cast<std::size_t>(flags.get_int("features"));
  const auto iterations =
      static_cast<std::size_t>(flags.get_int("iterations"));
  const auto r = static_cast<std::size_t>(flags.get_int("load"));

  // 1. Synthetic dataset from the paper's generative model (Sec. III-C).
  coupon::stats::Rng rng(static_cast<std::uint64_t>(flags.get_int("seed")));
  coupon::data::SyntheticConfig dconf;
  dconf.num_features = p;
  const auto problem = coupon::data::generate_logreg(m, dconf, rng);

  // 2. Group the m examples into n gradient units ("super examples"), so
  //    the scheme works at unit granularity.
  coupon::data::BatchPartition partition(m, m / n);
  coupon::core::GroupedBatchSource source(problem.dataset, partition);

  // 3. BCC with load r: each worker picks r units (one random batch).
  coupon::core::SchemeConfig sconf;
  sconf.num_workers = n;
  sconf.num_units = partition.num_batches();
  sconf.load = r;
  sconf.bcc_seed_first_batches = true;  // guarantee per-iteration coverage
  auto scheme =
      coupon::core::SchemeRegistry::instance().create("bcc", sconf, rng);

  std::printf("BCC quickstart: %zu workers, %zu examples -> %zu units, "
              "load r = %zu (B = %zu batches)\n",
              n, m, sconf.num_units, r,
              coupon::core::theory::bcc_batches(sconf.num_units, r));
  std::printf("expected recovery threshold (Eq. 2): %.2f of %zu workers\n\n",
              *scheme->expected_recovery_threshold(), n);

  // 4./5. Real threads + Nesterov's accelerated gradient (as the paper).
  coupon::runtime::ThreadCluster cluster(*scheme, source);
  coupon::opt::NesterovGradient optimizer(
      p, coupon::opt::LearningRateSchedule::constant(2.0));

  coupon::runtime::TrainOptions options;
  options.iterations = iterations;
  options.straggler.enabled = true;  // inject shift-exponential slowdowns
  options.straggler.shift_ms_per_unit = 0.05;
  options.straggler.straggle = 1.0;

  const double loss0 =
      coupon::opt::logistic_loss(problem.dataset, optimizer.weights());
  const auto result = cluster.train(optimizer, options);
  const double loss1 =
      coupon::opt::logistic_loss(problem.dataset, result.weights);

  std::printf("trained %zu iterations in %.3f s wall clock\n", iterations,
              result.elapsed_seconds);
  std::printf("loss: %.4f -> %.4f, train accuracy: %s\n", loss0, loss1,
              coupon::format_percent(
                  coupon::opt::accuracy(problem.dataset, result.weights))
                  .c_str());
  std::printf("mean workers heard per iteration: %.2f (min %.0f, max %.0f) "
              "out of %zu\n",
              result.workers_heard.mean(), result.workers_heard.min(),
              result.workers_heard.max(), n);
  std::printf("failed iterations: %zu\n", result.failed_iterations);
  return 0;
}
