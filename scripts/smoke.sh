#!/usr/bin/env bash
# Smoke-run every bench/ and examples/ binary (plus coupon_run) with tiny
# parameters, asserting exit 0 — so the figure/table code can't silently
# rot. Usage: scripts/smoke.sh [build-dir]  (default: build)
set -euo pipefail

BUILD_DIR="${1:-build}"
TMP_DIR="$(mktemp -d)"
trap 'rm -rf "${TMP_DIR}"' EXIT

run() {
  echo "==> $*"
  "$@" > /dev/null
}

# --- unified experiment runner: both runtimes, CSV to file and stdout ----
run "${BUILD_DIR}/tools/coupon_run" --scheme bcc --scenario shifted_exp \
    --runtime sim --iterations 5 --out "${TMP_DIR}/sim.csv"
test -s "${TMP_DIR}/sim.csv"
run "${BUILD_DIR}/tools/coupon_run" --scheme bcc --scenario shifted_exp \
    --runtime threaded --workers 4 --units 4 --load 2 --iterations 5 \
    --features 8 --examples_per_unit 5 --out "${TMP_DIR}/threaded.csv"
test -s "${TMP_DIR}/threaded.csv"
run "${BUILD_DIR}/tools/coupon_run" --scheme cr --scenario lossy \
    --runtime sim --iterations 5 --out -
run "${BUILD_DIR}/tools/coupon_run" --list
"${BUILD_DIR}/tools/coupon_run" --list | grep -q "analytic models"

# --- analytic oracle gate ------------------------------------------------
# --predict is zero-simulation and fully deterministic: two invocations
# must be byte-identical; --scheme auto must resolve and run end-to-end;
# an unsupported pair must fail with a ranked-table-free diagnostic.
echo "==> coupon_run --predict determinism + auto"
"${BUILD_DIR}/tools/coupon_run" --predict --scheme all \
    --scenario shifted_exp --workers 20 --units 20 --loads 2,4,10 \
    > "${TMP_DIR}/predict_a.txt"
"${BUILD_DIR}/tools/coupon_run" --predict --scheme all \
    --scenario shifted_exp --workers 20 --units 20 --loads 2,4,10 \
    > "${TMP_DIR}/predict_b.txt"
cmp "${TMP_DIR}/predict_a.txt" "${TMP_DIR}/predict_b.txt"
grep -q "E\[T\]" "${TMP_DIR}/predict_a.txt"
run "${BUILD_DIR}/tools/coupon_run" --scheme auto --scenario shifted_exp \
    --workers 10 --units 10 --load 2 --iterations 5 --out -

# Simulated training (real gradients over simulated time): the summary
# row must carry a final loss and a reached time_to_target.
run "${BUILD_DIR}/tools/coupon_run" --scheme bcc --scenario shifted_exp \
    --runtime sim --train --workers 8 --units 8 --load 2 --iterations 10 \
    --features 6 --examples_per_unit 4 --target_loss 0.69 \
    --out "${TMP_DIR}/train.csv"
grep -q "time_to_target" "${TMP_DIR}/train.csv"
test "$(tail -1 "${TMP_DIR}/train.csv" | awk -F, '{print $NF}')" != ""

# Gradient-coding family: gc_cyclic's deterministic n-r+1 timing trace,
# and sgc's approximate-recovery training run must still reach the
# target (unbiased decode => same trajectory to within the noise).
run "${BUILD_DIR}/tools/coupon_run" --scheme gc_cyclic \
    --scenario shifted_exp --runtime sim --workers 8 --units 8 --load 2 \
    --iterations 5 --out "${TMP_DIR}/gc.csv"
test -s "${TMP_DIR}/gc.csv"
run "${BUILD_DIR}/tools/coupon_run" --scheme sgc --scenario shifted_exp \
    --runtime sim --train --workers 8 --units 8 --load 2 --iterations 10 \
    --features 6 --examples_per_unit 4 --target_loss 0.69 \
    --out "${TMP_DIR}/sgc_train.csv"
grep -q "time_to_target" "${TMP_DIR}/sgc_train.csv"
test "$(tail -1 "${TMP_DIR}/sgc_train.csv" | awk -F, '{print $NF}')" != ""

# Multi-process socket runtime: 4 worker OS processes train end-to-end
# and reach the target loss; then the crash drill SIGKILLs worker 1
# mid-iteration and the run must still complete under kSkipUpdate. Both
# under a hard timeout so a wedged socket can never hang the smoke job.
run timeout 120 "${BUILD_DIR}/tools/coupon_run" --scheme bcc \
    --scenario no_stragglers --runtime process --workers 4 --units 4 \
    --load 2 --iterations 12 --seed 123 --features 8 --examples_per_unit 5 \
    --target_loss 0.69 --out "${TMP_DIR}/process.csv"
grep -q "time_to_target" "${TMP_DIR}/process.csv"
test "$(tail -1 "${TMP_DIR}/process.csv" | awk -F, '{print $NF}')" != ""
run timeout 120 "${BUILD_DIR}/tools/coupon_run" --scheme bcc \
    --scenario no_stragglers --runtime process --workers 4 --units 4 \
    --load 2 --iterations 12 --seed 123 --features 8 --examples_per_unit 5 \
    --crash_worker 1 --crash_iteration 2 --worker_timeout_ms 5000 \
    --out "${TMP_DIR}/process_crash.csv"
test -s "${TMP_DIR}/process_crash.csv"
test "$(wc -l < "${TMP_DIR}/process_crash.csv")" -eq 2  # header + summary row

# Parallel sweep: 2 schemes x 2 scenarios x 2 loads -> exactly 8 JSONL
# rows and 8 CSV rows + header.
run "${BUILD_DIR}/tools/coupon_run" --sweep --schemes bcc,cr \
    --scenarios shifted_exp,lossy --loads 2,10 --iterations 5 \
    --out "${TMP_DIR}/sweep.csv" --jsonl "${TMP_DIR}/sweep.jsonl"
test "$(wc -l < "${TMP_DIR}/sweep.jsonl")" -eq 8
test "$(wc -l < "${TMP_DIR}/sweep.csv")" -eq 9
# Deterministic parallelism: a serial re-run is bit-identical.
run "${BUILD_DIR}/tools/coupon_run" --sweep --schemes bcc,cr \
    --scenarios shifted_exp,lossy --loads 2,10 --iterations 5 --threads 1 \
    --out "${TMP_DIR}/sweep_serial.csv"
cmp "${TMP_DIR}/sweep.csv" "${TMP_DIR}/sweep_serial.csv"

# Pluggable latency models: sweep the new-model scenarios, then replay a
# per-worker latency trace from CSV via the parameterized trace:<path>
# scenario.
run "${BUILD_DIR}/tools/coupon_run" --sweep --schemes bcc,uncoded \
    --scenarios heavy_tail,weibull,bursty,markov --iterations 5 \
    --out "${TMP_DIR}/models.csv"
test "$(wc -l < "${TMP_DIR}/models.csv")" -eq 9
printf '0.01,0.02,0.03,0.04\n0.02,0.01,0.05,0.03\n' > "${TMP_DIR}/trace.csv"
run "${BUILD_DIR}/tools/coupon_run" --scheme uncoded \
    --scenario "trace:${TMP_DIR}/trace.csv" --workers 4 --units 4 --load 1 \
    --iterations 4 --out "${TMP_DIR}/trace_run.csv"
test -s "${TMP_DIR}/trace_run.csv"

# --- benches -------------------------------------------------------------
run "${BUILD_DIR}/bench/bench_ablation_coverage" --trials 200
run "${BUILD_DIR}/bench/bench_ablation_drop" --iterations 10
run "${BUILD_DIR}/bench/bench_ablation_latency_models" --iterations 10
run "${BUILD_DIR}/bench/bench_ablation_master_bw" --iterations 5
run "${BUILD_DIR}/bench/bench_ablation_r_sweep" --iterations 5 --placements 2
run "${BUILD_DIR}/bench/bench_coupon_tail" --trials 500
run "${BUILD_DIR}/bench/bench_fig2_tradeoff" --trials 50 --quick --workers 100
run "${BUILD_DIR}/bench/bench_fig4_runtime" --iterations 5
run "${BUILD_DIR}/bench/bench_fig5_heterogeneous" --trials 50 --refine_steps 10
run "${BUILD_DIR}/bench/bench_fig6_convergence" --quick \
    --csv "${TMP_DIR}/fig6.csv"
test -s "${TMP_DIR}/fig6.csv"
run "${BUILD_DIR}/bench/bench_perf_sim" --quick --reps 1 \
    --out "${TMP_DIR}/perf.json"
test -s "${TMP_DIR}/perf.json"
run "${BUILD_DIR}/bench/bench_table1_scenario1" --iterations 5 \
    --csv "${TMP_DIR}/table1.csv"
test -s "${TMP_DIR}/table1.csv"
run "${BUILD_DIR}/bench/bench_table2_scenario2" --iterations 5

# Google Benchmark microbenches are optional (skipped when the library is
# absent at configure time).
if [ -x "${BUILD_DIR}/bench/bench_encode_decode" ]; then
  run "${BUILD_DIR}/bench/bench_encode_decode" --benchmark_min_time=0.01
fi
if [ -x "${BUILD_DIR}/bench/bench_micro_linalg" ]; then
  run "${BUILD_DIR}/bench/bench_micro_linalg" --benchmark_min_time=0.01
fi

# --- examples ------------------------------------------------------------
run "${BUILD_DIR}/examples/example_compare_schemes" --iterations 5
run "${BUILD_DIR}/examples/example_heterogeneous_cluster" --trials 50
run "${BUILD_DIR}/examples/example_quickstart" --workers 4 --examples 80 \
    --features 20 --iterations 5
run "${BUILD_DIR}/examples/example_straggler_profile" --workers 8 --load 2 \
    --features 20 --iterations 3

echo "smoke OK"
