#!/usr/bin/env bash
# Line-coverage gate for the statistical core: builds Debug with gcov
# instrumentation, runs the test suite, aggregates line coverage over
# src/core/, src/simulate/, src/stats/, and src/analytic/, writes
# coverage-summary.txt, and fails
# when coverage drops below the recorded baseline
# (scripts/coverage_baseline.txt).
#
# Needs only `gcov` (ships with GCC) — no gcovr/lcov. Usage:
#   scripts/coverage.sh [build-dir]   (default: build-cov)
set -euo pipefail

BUILD_DIR="${1:-build-cov}"
REPO_DIR="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BASELINE_FILE="${REPO_DIR}/scripts/coverage_baseline.txt"
SUMMARY_FILE="${BUILD_DIR}/coverage-summary.txt"

cmake -B "${BUILD_DIR}" -S "${REPO_DIR}" \
  -DCMAKE_BUILD_TYPE=Debug -DCOUPON_COVERAGE=ON \
  -DCOUPON_BUILD_BENCH=OFF -DCOUPON_BUILD_EXAMPLES=OFF
cmake --build "${BUILD_DIR}" -j
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j 4 > /dev/null

# Aggregate with plain gcov: run it over every .gcda in the coupon
# library's core/, simulate/, stats/, and analytic/ objects, keep
# per-source "Lines executed" summaries for files under those trees, and
# take the max per file across translation units (headers show up in
# several TUs; the max is what the best-informed TU measured).
OBJ_DIR="${BUILD_DIR}/src/CMakeFiles/coupon.dir"
GCDA_FILES=$(find "${OBJ_DIR}/core" "${OBJ_DIR}/simulate" \
  "${OBJ_DIR}/stats" "${OBJ_DIR}/analytic" -name '*.gcda')
if [ -z "${GCDA_FILES}" ]; then
  echo "no .gcda files under ${OBJ_DIR} — did the tests run?" >&2
  exit 1
fi

# gcov prints "File '<path>'" then "Lines executed:P% of N".
# shellcheck disable=SC2086
gcov -n ${GCDA_FILES} 2>/dev/null |
  awk -v repo="${REPO_DIR}/" '
    /^File / {
      file = $2; gsub(/\x27/, "", file); sub(repo, "", file); next
    }
    /^Lines executed:/ {
      if (file ~ /^src\/(core|simulate|stats|analytic)\//) {
        split($0, parts, /[:% ]+/)
        pct = parts[3]; n = parts[5]
        covered = pct / 100.0 * n
        if (!(file in best) || covered > best_covered[file]) {
          best[file] = n; best_covered[file] = covered
        }
      }
      file = ""
    }
    END {
      total = 0; total_covered = 0
      for (f in best) {
        printf "%6.2f%%  %5d lines  %s\n",
               100.0 * best_covered[f] / best[f], best[f], f
        total += best[f]; total_covered += best_covered[f]
      }
      if (total == 0) { print "no matching source files" > "/dev/stderr"; exit 1 }
      printf "TOTAL %.2f%% of %d lines in src/core + src/simulate + src/stats + src/analytic\n",
             100.0 * total_covered / total, total
    }' > "${SUMMARY_FILE}.raw"

# Per-file lines sorted by path, TOTAL last.
{ grep -v '^TOTAL' "${SUMMARY_FILE}.raw" | sort -k4;
  grep '^TOTAL' "${SUMMARY_FILE}.raw"; } > "${SUMMARY_FILE}"
rm -f "${SUMMARY_FILE}.raw"

cat "${SUMMARY_FILE}"

ACTUAL=$(awk '/^TOTAL/ {sub(/%/, "", $2); print $2}' "${SUMMARY_FILE}")
BASELINE=$(cat "${BASELINE_FILE}")
echo "line coverage: ${ACTUAL}% (baseline: ${BASELINE}%)"
awk -v actual="${ACTUAL}" -v baseline="${BASELINE}" 'BEGIN {
  if (actual + 0 < baseline + 0) {
    printf "FAIL: coverage %.2f%% dropped below the %.2f%% baseline\n",
           actual, baseline
    exit 1
  }
  print "OK: coverage at or above baseline"
}'
