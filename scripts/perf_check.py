#!/usr/bin/env python3
"""Gate simulator throughput against the committed baseline.

Usage:
    perf_check.py BASELINE.json CURRENT.json [--max-slowdown 2.0]

Both files are bench_perf_sim JSON outputs. Cells are matched on
(scheme, workers, units, load) — iteration counts may differ (quick mode
runs the same grid with ~10x fewer iterations; iters/sec is comparable
because the simulator is in steady state either way). The check fails
when any matched cell's iters_per_sec drops below baseline/max-slowdown.

The threshold is deliberately generous (default 2x): CI runners are
noisy, differently-provisioned machines than wherever BENCH_sim.json was
recorded. The gate exists to catch order-of-magnitude regressions (an
accidental per-iteration allocation, a quadratic scan), not 10%% drift.
If every cell fails with a similar ratio and the diff touched no
simulator code, suspect the runner class, not the code: recapture
BENCH_sim.json from the CI job's uploaded perf-quick artifact (see
README "Simulator throughput baseline").

Refreshing the baseline after an intentional change:
    build/bench/bench_perf_sim --reps 5 --out BENCH_sim.json
and commit the result, saying so in the commit message.
"""

import argparse
import json
import sys


def load_cells(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("benchmark") != "perf_sim":
        sys.exit(f"{path}: not a perf_sim result file")
    return {
        (r["scheme"], r["workers"], r["units"], r["load"]): r["iters_per_sec"]
        for r in doc["results"]
    }


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--max-slowdown", type=float, default=2.0,
                        help="fail when baseline/current exceeds this")
    args = parser.parse_args()

    baseline = load_cells(args.baseline)
    current = load_cells(args.current)
    matched = sorted(set(baseline) & set(current))
    if not matched:
        sys.exit("no (scheme, workers, units, load) cells in common")

    failures = []
    for key in matched:
        ratio = baseline[key] / current[key]
        scheme, n, m, r = key
        status = "FAIL" if ratio > args.max_slowdown else "ok"
        print(f"{status:4s} {scheme:12s} n={n:<4d} m={m:<4d} r={r:<3d} "
              f"baseline={baseline[key]:>10.0f} current={current[key]:>10.0f} "
              f"iters/sec  (x{ratio:.2f} slowdown)")
        if ratio > args.max_slowdown:
            failures.append(key)

    if failures:
        sys.exit(f"{len(failures)}/{len(matched)} cells slower than "
                 f"{args.max_slowdown}x the committed baseline "
                 f"(see BENCH_sim.json; refresh it if the change is "
                 f"intentional)")
    print(f"perf OK: {len(matched)} cells within {args.max_slowdown}x "
          f"of baseline")


if __name__ == "__main__":
    main()
