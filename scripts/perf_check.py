#!/usr/bin/env python3
"""Gate simulator throughput against the committed baseline.

Usage:
    perf_check.py BASELINE.json CURRENT.json [--max-slowdown 2.0]
                  [--max-row-seconds 30.0]

Both files are bench_perf_sim JSON outputs. Cells are matched on
(scheme, workers, units, load) — iteration counts may differ (quick mode
runs the same grid with ~10x fewer iterations; iters/sec is comparable
because the simulator is in steady state either way). The check fails
when any matched cell's iters_per_sec drops below baseline/max-slowdown.

A second, absolute gate bounds each *current* row's measured wall time:
any row whose best_seconds exceeds --max-row-seconds fails outright, even
if the baseline has no matching cell. This is what keeps the large-n rows
honest — quick mode skips the n >= 1e5 grid rows entirely (they are
recaptured locally when refreshing BENCH_sim.json), so every row that
does run in CI must stay interactive. Ratios catch relative regressions;
the row budget catches a new row that is unreasonable from birth.

The threshold is deliberately generous (default 2x): CI runners are
noisy, differently-provisioned machines than wherever BENCH_sim.json was
recorded. The gate exists to catch order-of-magnitude regressions (an
accidental per-iteration allocation, a quadratic scan), not 10%% drift.
If every cell fails with a similar ratio and the diff touched no
simulator code, suspect the runner class, not the code: recapture
BENCH_sim.json from the CI job's uploaded perf-quick artifact (see
README "Simulator throughput baseline").

Refreshing the baseline after an intentional change:
    build/bench/bench_perf_sim --reps 5 --out BENCH_sim.json
and commit the result, saying so in the commit message.
"""

import argparse
import json
import sys


def load_cells(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("benchmark") != "perf_sim":
        sys.exit(f"{path}: not a perf_sim result file")
    return {
        (r["scheme"], r["workers"], r["units"], r["load"]): r
        for r in doc["results"]
    }


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--max-slowdown", type=float, default=2.0,
                        help="fail when baseline/current exceeds this")
    parser.add_argument("--max-row-seconds", type=float, default=30.0,
                        help="fail any current row whose best_seconds "
                             "exceeds this (0 disables)")
    args = parser.parse_args()

    baseline = load_cells(args.baseline)
    current = load_cells(args.current)
    matched = sorted(set(baseline) & set(current))
    if not matched:
        sys.exit("no (scheme, workers, units, load) cells in common")

    failures = []
    for key in matched:
        ratio = baseline[key]["iters_per_sec"] / current[key]["iters_per_sec"]
        scheme, n, m, r = key
        status = "FAIL" if ratio > args.max_slowdown else "ok"
        print(f"{status:4s} {scheme:14s} n={n:<7d} m={m:<7d} r={r:<3d} "
              f"baseline={baseline[key]['iters_per_sec']:>10.0f} "
              f"current={current[key]['iters_per_sec']:>10.0f} "
              f"iters/sec  (x{ratio:.2f} slowdown)")
        if ratio > args.max_slowdown:
            failures.append(key)

    # Informational: how much slower the training path runs than the
    # timing-only kernel at the same shape (train:<s> vs <s> rows in the
    # CURRENT file). The ratio is the cost of real gradients + encode +
    # decode per iteration; ROADMAP item 4 tracks closing it. Not a gate —
    # it moves with p and examples/unit, not just with code quality.
    ratios = []
    for (scheme, n, m, r), row in sorted(current.items()):
        if not scheme.startswith("train:"):
            continue
        timing = current.get((scheme[len("train:"):], n, m, r))
        if timing is None or row["iters_per_sec"] <= 0:
            continue
        ratios.append((scheme, n, m, r,
                       timing["iters_per_sec"] / row["iters_per_sec"]))
    if ratios:
        print("train/timing throughput ratio (informational):")
        for scheme, n, m, r, ratio in ratios:
            print(f"     {scheme:14s} n={n:<7d} m={m:<7d} r={r:<3d} "
                  f"timing-only is x{ratio:.1f} the training throughput")

    slow_rows = []
    if args.max_row_seconds > 0:
        for key, row in sorted(current.items()):
            seconds = row.get("best_seconds", 0.0)
            if seconds > args.max_row_seconds:
                scheme, n, m, r = key
                print(f"FAIL {scheme:14s} n={n:<7d} m={m:<7d} r={r:<3d} "
                      f"best_seconds={seconds:.2f} exceeds row budget "
                      f"{args.max_row_seconds:.2f}s")
                slow_rows.append(key)

    if failures or slow_rows:
        parts = []
        if failures:
            parts.append(f"{len(failures)}/{len(matched)} cells slower than "
                         f"{args.max_slowdown}x the committed baseline")
        if slow_rows:
            parts.append(f"{len(slow_rows)} rows over the "
                         f"{args.max_row_seconds:.2f}s per-row budget")
        sys.exit("; ".join(parts) +
                 " (see BENCH_sim.json; refresh it if the change is "
                 "intentional)")
    print(f"perf OK: {len(matched)} cells within {args.max_slowdown}x "
          f"of baseline, all rows under "
          f"{args.max_row_seconds:.2f}s")


if __name__ == "__main__":
    main()
