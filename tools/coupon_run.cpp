// Unified experiment runner: scheme x straggler scenario x runtime from
// CLI flags, CSV/JSONL out. Three modes:
//
//   # one run: per-iteration trace CSV (sim) or summary CSV (threaded)
//   $ coupon_run --scheme bcc --scenario shifted_exp --runtime sim
//   $ coupon_run --scheme cr --scenario no_stragglers --runtime threaded
//         --workers 8 --units 8 --load 2 --iterations 20 --out run.csv
//
//   # convergence: real gradients over simulated time (summary CSV with
//   # final_loss / time_to_target)
//   $ coupon_run --scheme bcc --scenario shifted_exp --runtime sim --train
//         --target_loss 0.5 --iterations 50
//
//   # everything the registries know about
//   $ coupon_run --list
//
//   # analytic oracle: exact E[T]/quantiles/failure ranking, zero
//   # simulation; '--scheme auto' runs whatever the oracle ranks best
//   $ coupon_run --predict --scheme all --loads 2,5,10,25
//   $ coupon_run --scheme auto --scenario lossy
//
//   # parallel cartesian sweep, one summary CSV row + JSONL object per cell
//   $ coupon_run --sweep --schemes bcc,cr --scenarios shifted_exp,lossy
//         --loads 2,5,10 --iterations 20 --out sweep.csv --jsonl sweep.jsonl
//
// Sweeps run on a thread pool (--threads, 0 = hardware, 1 = serial) with
// per-cell deterministic seeding: the output is bit-identical to a serial
// run, and any row reproduces as a single coupon_run invocation. A
// run-level summary is always printed to stderr so stdout stays clean
// CSV when --out=-.

#include <cstdio>
#include <exception>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "analytic/dist.hpp"
#include "analytic/scheme_model.hpp"
#include "core/scheme_registry.hpp"
#include "driver/driver.hpp"
#include "driver/predict.hpp"
#include "driver/runtime_registry.hpp"
#include "driver/sweep.hpp"
#include "simulate/cluster_config.hpp"
#include "util/util.hpp"

namespace {

using namespace coupon;

/// Splits "a,b,c" into {"a","b","c"}; empty input -> empty list.
std::vector<std::string> split_list(const std::string& text) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  while (begin <= text.size() && !text.empty()) {
    const std::size_t comma = text.find(',', begin);
    const std::size_t end = comma == std::string::npos ? text.size() : comma;
    out.push_back(text.substr(begin, end - begin));
    if (comma == std::string::npos) {
      break;
    }
    begin = comma + 1;
  }
  return out;
}

/// Parses "2,5,10" into sizes; returns false with a diagnostic on junk.
bool parse_size_list(const std::string& flag, const std::string& text,
                     std::vector<std::size_t>& out) {
  for (const auto& item : split_list(text)) {
    try {
      std::size_t pos = 0;
      const long long value = std::stoll(item, &pos);
      if (pos != item.size() || value < 0) {
        throw std::invalid_argument(item);
      }
      out.push_back(static_cast<std::size_t>(value));
    } catch (const std::exception&) {
      std::fprintf(stderr, "--%s: '%s' is not a non-negative integer\n",
                   flag.c_str(), item.c_str());
      return false;
    }
  }
  return true;
}

/// True when the scenario's latency law reduces to a closed form the
/// analytic oracle can evaluate (probed at a representative size).
bool scenario_is_analytic(const std::string& name) {
  try {
    const auto scenario =
        coupon::driver::ScenarioRegistry::instance().build(name, 50);
    if (scenario.live_only) {
      return false;
    }
    const auto law =
        simulate::make_latency_model(scenario.cluster, 50)->law();
    return analytic::ComputeDist::from_law(law, 1.0, nullptr).has_value();
  } catch (const std::exception&) {
    return false;
  }
}

int list_registries() {
  std::printf("schemes:\n");
  const auto& schemes = core::SchemeRegistry::instance();
  for (const auto& name : schemes.names()) {
    const auto* entry = schemes.find(name);
    std::string tags;
    if (entry->caps.supports_partial_decode) {
      tags += " [partial-decode]";
    }
    if (entry->caps.requires_units_equal_workers) {
      tags += " [m==n]";
    }
    if (entry->caps.requires_load_divides_workers) {
      tags += " [r|n]";
    }
    if (entry->caps.approximate_recovery) {
      tags += " [approx]";
    }
    if (analytic::AnalyticModelRegistry::instance().find(name) != nullptr) {
      tags += " [analytic]";
    }
    std::string aliases;
    for (const auto& alias : entry->aliases) {
      aliases += aliases.empty() ? alias : ", " + alias;
    }
    if (!aliases.empty()) {
      aliases = " (aliases: " + aliases + ")";
    }
    std::printf("  %-14s%s\n      %s%s\n", entry->name.c_str(), tags.c_str(),
                entry->description.c_str(), aliases.c_str());
  }
  std::printf("\nscenarios:\n");
  const auto& scenarios = coupon::driver::ScenarioRegistry::instance();
  for (const auto& name : scenarios.names()) {
    const auto* entry = scenarios.find(name);
    // Parameterized entries are selected as "name:<arg>".
    const std::string spelling =
        entry->param_builder && !entry->builder ? entry->name + ":<arg>"
                                                : entry->name;
    std::string tags;
    if (entry->sim_only) {
      tags += " [sim only]";
    }
    if (entry->live_only) {
      tags += " [live only]";
    }
    if (scenario_is_analytic(entry->name)) {
      tags += " [analytic]";
    }
    std::printf("  %-14s%s\n      %s\n", spelling.c_str(), tags.c_str(),
                entry->description.c_str());
  }
  std::printf("\nruntimes:\n");
  const auto& runtimes = coupon::driver::RuntimeRegistry::instance();
  for (const auto& name : runtimes.names()) {
    const auto* entry = runtimes.find(name);
    std::string tags;
    if (entry->caps.computes_gradients) {
      tags += " [trains]";
    }
    if (entry->caps.simulated_clock) {
      tags += " [simulated-clock]";
    }
    if (entry->caps.honours_elasticity) {
      tags += " [elastic]";
    }
    if (entry->caps.spawns_processes) {
      tags += " [processes]";
    }
    std::string aliases;
    for (const auto& alias : entry->aliases) {
      aliases += aliases.empty() ? alias : ", " + alias;
    }
    if (!aliases.empty()) {
      aliases = " (aliases: " + aliases + ")";
    }
    std::printf("  %-14s%s\n      %s%s\n", entry->name.c_str(), tags.c_str(),
                entry->description.c_str(), aliases.c_str());
  }
  std::printf(
      "\nanalytic models (--predict / --scheme auto; [analytic]-tagged "
      "scheme x scenario pairs have exact oracles):\n");
  const auto& models = analytic::AnalyticModelRegistry::instance();
  for (const auto& name : models.names()) {
    const auto* model = models.find(name);
    std::printf("  %-14s\n      %s\n", name.c_str(),
                std::string(model->description()).c_str());
  }
  return 0;
}

int run_predict(const CliFlags& flags,
                const coupon::driver::ExperimentConfig& config) {
  std::vector<std::size_t> loads;
  if (!parse_size_list("loads", flags.get_string("loads"), loads)) {
    return 1;
  }
  try {
    const auto candidates =
        coupon::driver::predict_candidates(config, loads);
    const auto report = coupon::driver::predict_report(config, candidates);
    std::fputs(coupon::driver::render_predict_report(report).c_str(),
               stdout);
    if (!report.ranked.empty()) {
      const auto& best = report.ranked.front();
      std::fprintf(stderr,
                   "predicted best: %s r=%zu | scenario=%s n=%zu m=%zu "
                   "seed=%llu | E[T]=%.4fs (exact, no simulation)\n",
                   best.scheme.c_str(), best.load, config.scenario.c_str(),
                   config.num_workers, config.num_units,
                   static_cast<unsigned long long>(config.seed),
                   best.expected_time);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "predict failed: %s\n", e.what());
    return 1;
  }
  return 0;
}

int run_single(const coupon::driver::ExperimentConfig& config,
               const std::string& out_path) {
  coupon::driver::RunRecord record;
  try {
    record = coupon::driver::run_experiment(config);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "experiment failed: %s\n", e.what());
    return 1;
  }

  // Timing-only simulated runs emit the per-iteration trace schema
  // (header-only at --iterations 0); training runs (threaded, or sim
  // --train) a summary row with final loss / train accuracy /
  // time_to_target.
  const bool trained = record.final_loss.has_value();
  const auto format = record.runtime == "sim" && !trained
                          ? coupon::driver::RecordFormat::kTraceCsv
                          : coupon::driver::RecordFormat::kSummaryCsv;
  if (!coupon::driver::write_records_to_path(out_path, {record}, format)) {
    return 1;
  }

  std::fprintf(stderr,
               "%s | scenario=%s runtime=%s n=%zu m=%zu r=%zu iters=%zu | "
               "mean K=%.2f total=%.3fs failures=%zu\n",
               record.scheme_display.c_str(), record.scenario.c_str(),
               record.runtime.c_str(), record.num_workers, record.num_units,
               record.load, record.iterations, record.recovery_threshold,
               record.total_time, record.failures);
  if (trained) {
    std::string extras;
    if (record.train_accuracy) {
      extras += " accuracy=" + std::to_string(*record.train_accuracy);
    }
    if (record.time_to_target) {
      extras += " time_to_target=" + std::to_string(*record.time_to_target) +
                "s";
    }
    std::fprintf(stderr, "final loss=%.6f%s\n", *record.final_loss,
                 extras.c_str());
  }
  return 0;
}

int run_sweep_mode(const CliFlags& flags,
                   const coupon::driver::ExperimentConfig& base) {
  coupon::driver::SweepPlan plan;
  plan.base = base;
  // Sweep mode renders summary CSV + trace-less JSONL only: skip
  // materializing per-iteration traces in every simulated cell.
  plan.base.record_trace = false;
  plan.schemes = split_list(flags.get_string("schemes"));
  plan.scenarios = split_list(flags.get_string("scenarios"));
  if (!parse_size_list("workers_axis", flags.get_string("workers_axis"),
                       plan.workers) ||
      !parse_size_list("units_axis", flags.get_string("units_axis"),
                       plan.units) ||
      !parse_size_list("loads", flags.get_string("loads"), plan.loads) ||
      !parse_size_list("iterations_axis",
                       flags.get_string("iterations_axis"),
                       plan.iterations)) {
    return 1;
  }
  std::vector<std::size_t> seeds;
  if (!parse_size_list("seeds", flags.get_string("seeds"), seeds)) {
    return 1;
  }
  plan.seeds.assign(seeds.begin(), seeds.end());

  // Streams: open both before running so path errors surface immediately.
  const std::string out_path = flags.get_string("out");
  const std::string jsonl_path = flags.get_string("jsonl");
  std::ofstream csv_file;
  std::ostream* csv_os = nullptr;
  if (out_path == "-") {
    csv_os = &std::cout;
  } else {
    csv_file.open(out_path);
    if (!csv_file) {
      std::fprintf(stderr, "cannot open '%s' for writing\n",
                   out_path.c_str());
      return 1;
    }
    csv_os = &csv_file;
  }
  std::ofstream jsonl_file;
  if (!jsonl_path.empty()) {
    jsonl_file.open(jsonl_path);
    if (!jsonl_file) {
      std::fprintf(stderr, "cannot open '%s' for writing\n",
                   jsonl_path.c_str());
      return 1;
    }
  }

  coupon::driver::CsvSummarySink csv_sink(*csv_os);
  std::unique_ptr<coupon::driver::JsonlSink> jsonl_sink;
  std::vector<coupon::driver::RecordSink*> sinks = {&csv_sink};
  if (jsonl_file.is_open()) {
    jsonl_sink = std::make_unique<coupon::driver::JsonlSink>(jsonl_file);
    sinks.push_back(jsonl_sink.get());
  }
  coupon::driver::TeeSink tee(sinks);

  coupon::driver::SweepOptions options;
  options.threads = static_cast<std::size_t>(flags.get_int("threads"));
  options.sink = &tee;

  std::vector<coupon::driver::RunRecord> records;
  try {
    records = coupon::driver::run_sweep(plan, options);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sweep failed: %s\n", e.what());
    return 1;
  }

  csv_os->flush();
  if (csv_file.is_open()) {
    csv_file.close();  // flush and surface truncated writes
  }
  if (!*csv_os) {
    std::fprintf(stderr, "error writing '%s'\n", out_path.c_str());
    return 1;
  }
  if (jsonl_file.is_open()) {
    jsonl_file.close();
    if (!jsonl_file) {
      std::fprintf(stderr, "error writing '%s'\n", jsonl_path.c_str());
      return 1;
    }
  }

  std::fprintf(stderr, "sweep: %zu cells | runtime=%s threads=%s\n",
               records.size(), base.runtime.c_str(),
               options.threads == 0 ? "auto"
                                    : std::to_string(options.threads).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags;
  coupon::driver::add_experiment_flags(flags);
  flags.add_string("out", "-", "CSV output path ('-' = stdout)")
      .add_bool("list", false,
                "list registered schemes, scenarios, and runtimes")
      .add_bool("sweep", false,
                "run a cartesian sweep (see the axis flags below)")
      .add_string("schemes", "", "sweep: comma-separated scheme axis")
      .add_string("scenarios", "", "sweep: comma-separated scenario axis")
      .add_string("workers_axis", "", "sweep: comma-separated n axis")
      .add_string("units_axis", "",
                  "sweep: comma-separated m axis (default: m tracks n)")
      .add_string("loads", "", "sweep: comma-separated r axis")
      .add_string("iterations_axis", "",
                  "sweep: comma-separated iterations axis")
      .add_string("seeds", "", "sweep: comma-separated seed axis")
      .add_string("jsonl", "", "sweep: also write one JSON object per cell")
      .add_int("threads", 0, "sweep: worker threads (0 = hardware, 1 = serial)")
      .add_bool("predict", false,
                "rank (scheme, r) candidates with the analytic oracle — "
                "exact E[T]/quantiles/failure, zero simulation (use "
                "--scheme all and --loads for the candidate grid)");
  if (!flags.parse(argc, argv)) {
    return 1;
  }

  if (flags.get_bool("list")) {
    return list_registries();
  }

  auto config = coupon::driver::config_from_flags(flags);
  if (!config) {
    return 1;
  }

  if (flags.get_bool("predict")) {
    return run_predict(flags, *config);
  }
  if (config->scheme == "all") {
    std::fprintf(stderr,
                 "--scheme all is a --predict candidate grid; pick a "
                 "concrete scheme (or auto) to run\n");
    return 1;
  }

  if (config->scheme == "auto") {
    if (flags.get_bool("sweep")) {
      std::fprintf(stderr,
                   "--scheme auto resolves one cell; in --sweep mode pass "
                   "an explicit --schemes axis instead\n");
      return 1;
    }
    try {
      config->scheme = coupon::driver::resolve_auto_scheme(*config);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 1;
    }
    std::fprintf(stderr, "--scheme auto -> %s (analytic oracle)\n",
                 config->scheme.c_str());
  }

  if (flags.get_bool("sweep")) {
    return run_sweep_mode(flags, *config);
  }
  return run_single(*config, flags.get_string("out"));
}
