// Unified experiment runner: scheme x straggler scenario x runtime from
// CLI flags, CSV out.
//
//   $ coupon_run --scheme bcc --scenario shifted_exp --runtime sim
//   $ coupon_run --scheme cr --scenario lossy --runtime threaded
//         --workers 8 --units 8 --load 2 --iterations 20 --out run.csv
//
// Simulated runs emit one CSV row per iteration (latency trace); threaded
// runs emit one summary row including final loss and train accuracy. A
// run-level summary is always printed to stderr so stdout stays clean CSV
// when --out=-.

#include <cstdio>
#include <exception>

#include "driver/driver.hpp"
#include "util/util.hpp"

int main(int argc, char** argv) {
  coupon::CliFlags flags;
  coupon::driver::add_experiment_flags(flags);
  flags.add_string("out", "-", "CSV output path ('-' = stdout)");
  if (!flags.parse(argc, argv)) {
    return 1;
  }

  const auto config = coupon::driver::config_from_flags(flags);
  if (!config) {
    return 1;
  }

  coupon::driver::ExperimentResult result;
  try {
    result = coupon::driver::run_experiment(*config);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "experiment failed: %s\n", e.what());
    return 1;
  }

  if (!coupon::driver::write_csv_to_path(flags.get_string("out"), result)) {
    return 1;
  }

  std::fprintf(stderr,
               "%s | scenario=%s runtime=%s n=%zu m=%zu r=%zu iters=%zu | "
               "mean K=%.2f total=%.3fs failures=%zu\n",
               result.summary.scheme.c_str(), config->scenario.c_str(),
               std::string(coupon::driver::runtime_name(config->runtime))
                   .c_str(),
               config->num_workers, config->num_units, config->load,
               config->iterations, result.summary.recovery_threshold,
               result.summary.total_time, result.summary.failures);
  return 0;
}
