// Ablation: which of the paper's conclusions survive outside the Eq. 15
// shifted-exponential world? One SweepPlan runs uncoded/CR/FR/BCC across
// every registered latency-model scenario (latency_model.hpp):
//
//   shifted_exp  the paper's law — H_n waiting times exact (Eq. 15)
//   heavy_tail   Pareto(1.5): infinite variance, E[max] ~ n^(2/3)
//   weibull      stretched-exponential tail, E[max] ~ (log n)^(1/k)
//   bursty       sporadic 10x slowdowns (Bitar et al.'s regime)
//   markov       persistent stragglers, correlated across iterations
//
// Expected shape: the *combinatorial* ordering (BCC's recovery threshold
// ~ (m/r) log(m/r) << CR's m-r+1 < uncoded's m) is law-independent and
// holds in every column; the *margins* move — heavy tails punish
// wait-for-all schemes hardest, so BCC's speedup grows as the tail gets
// heavier, while under markov the per-iteration analysis still predicts
// means but run totals spread (see theory.hpp on Eq. 15 applicability).

#include <cstdio>
#include <string>
#include <vector>

#include "core/core.hpp"
#include "driver/driver.hpp"
#include "driver/sweep.hpp"
#include "util/util.hpp"

int main(int argc, char** argv) {
  coupon::CliFlags flags;
  flags.add_int("iterations", 200, "iterations per (scheme, model) point");
  if (!flags.parse(argc, argv)) {
    return 1;
  }

  const auto base = coupon::simulate::ec2_scenario_one();
  coupon::driver::SweepPlan plan;
  plan.base.num_workers = base.num_workers;
  plan.base.num_units = base.num_units;
  plan.base.load = base.load;
  plan.base.seed = base.seed;
  plan.base.iterations =
      static_cast<std::size_t>(flags.get_int("iterations"));
  plan.base.record_trace = false;  // summary table only
  plan.schemes = {"uncoded", "cr", "fr", "bcc"};
  plan.scenarios = {"shifted_exp", "heavy_tail", "weibull", "bursty",
                    "markov"};

  const auto records = coupon::driver::run_sweep(plan);

  std::printf("Latency-model ablation — n=%zu m=%zu r=%zu, %zu iterations "
              "per cell\n\n",
              plan.base.num_workers, plan.base.num_units, plan.base.load,
              plan.base.iterations);
  // Cell order is scheme-major, scenario-minor.
  const std::size_t num_scenarios = plan.scenarios.size();
  for (std::size_t d = 0; d < num_scenarios; ++d) {
    std::printf("--- scenario %s ---\n", plan.scenarios[d].c_str());
    std::vector<coupon::driver::RunRecord> rows;
    for (std::size_t s = 0; s < plan.schemes.size(); ++s) {
      rows.push_back(records[s * num_scenarios + d]);
    }
    std::fputs(coupon::driver::summary_table(rows).render().c_str(),
               stdout);
    const double speedup =
        coupon::driver::speedup_fraction(rows.back(), rows.front());
    std::printf("BCC vs uncoded: %s faster\n\n",
                coupon::format_percent(speedup, 1).c_str());
  }

  std::printf(
      "The threshold ordering is combinatorial and survives every model; "
      "the margins\ntrack the tail weight — Eq. 15's H_n predictions are "
      "exact only in the first\ncolumn block (see core/theory.hpp).\n");
  return 0;
}
