// Ablation: BCC's "sufficiently large n" requirement (design choice #3
// of DESIGN.md §5). With n workers picking among B batches uniformly,
// the probability that some batch is never picked is computed exactly by
// inclusion-exclusion and checked against Monte Carlo, as a function of
// n/B. Also shows the library's kSeedFirstBatches extension, which
// removes the failure mode at the cost of the first B workers'
// placements no longer being i.i.d.

#include <cstdio>

#include "core/bcc.hpp"
#include "stats/rng.hpp"
#include "util/util.hpp"

int main(int argc, char** argv) {
  coupon::CliFlags flags;
  flags.add_int("batches", 10, "number of BCC batches B = ceil(m/r)")
      .add_int("trials", 20000, "Monte Carlo placements per point")
      .add_int("seed", 99, "PRNG seed");
  if (!flags.parse(argc, argv)) {
    return 1;
  }
  const auto batches = static_cast<std::size_t>(flags.get_int("batches"));
  const auto trials = static_cast<std::size_t>(flags.get_int("trials"));
  coupon::stats::Rng rng(static_cast<std::uint64_t>(flags.get_int("seed")));

  std::printf("BCC coverage-failure probability vs cluster size "
              "(B = %zu batches)\n\n", batches);
  coupon::AsciiTable table({"n", "n/B", "analytic P(fail)", "MC P(fail)",
                            "seeded P(fail)"});
  for (std::size_t mult : {1u, 2u, 3u, 4u, 6u, 8u, 12u}) {
    const std::size_t n = batches * mult;
    const double analytic =
        coupon::core::BccScheme::coverage_failure_probability(n, batches);
    std::size_t failures = 0;
    for (std::size_t t = 0; t < trials; ++t) {
      std::vector<bool> seen(batches, false);
      for (std::size_t i = 0; i < n; ++i) {
        seen[rng.uniform_int(batches)] = true;
      }
      for (bool s : seen) {
        if (!s) {
          ++failures;
          break;
        }
      }
    }
    table.add_row(
        {std::to_string(n), std::to_string(mult),
         coupon::format_double(analytic, 6),
         coupon::format_double(
             static_cast<double>(failures) / static_cast<double>(trials), 6),
         "0.000000"});  // kSeedFirstBatches covers by construction
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("\nFailure probability decays like B*e^{-n/B}: at n/B >= 8 "
              "it is already negligible,\nwhich is why the paper's "
              "n/B = 10 (scenario one) and n/B = 10 (scenario two)\n"
              "configurations never hit it.\n");
  return 0;
}
