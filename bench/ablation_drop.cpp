// Ablation: robustness to lost messages (worker crash / packet drop),
// quantifying the paper's "Reliability" and "Universality" bullets. A
// wait-for-all scheme fails an iteration when *any* message is lost; CR
// fails once more than s = r - 1 messages are lost; BCC and FR fail only
// when every replica of some batch/block is lost — with n/B workers per
// batch on average, that stays negligible far beyond the point where the
// other schemes have collapsed.

#include <cstdio>

#include "simulate/simulate.hpp"
#include "util/util.hpp"

int main(int argc, char** argv) {
  coupon::CliFlags flags;
  flags.add_int("iterations", 300, "iterations per (scheme, drop) point");
  if (!flags.parse(argc, argv)) {
    return 1;
  }
  const auto iterations =
      static_cast<std::size_t>(flags.get_int("iterations"));

  auto scenario = coupon::simulate::ec2_scenario_one();
  scenario.iterations = iterations;

  using coupon::core::SchemeKind;
  const std::vector<SchemeKind> schemes = {
      SchemeKind::kUncoded, SchemeKind::kCyclicRepetition,
      SchemeKind::kFractionalRepetition, SchemeKind::kBcc};

  std::printf("Message-drop ablation — %s, %zu iterations per point, "
              "r = %zu\n\n", scenario.name.c_str(), iterations,
              scenario.load);
  coupon::AsciiTable table({"drop prob", "uncoded failed", "CR failed",
                            "FR failed", "BCC failed"});
  for (double drop : {0.0, 0.01, 0.02, 0.05, 0.1, 0.2, 0.4}) {
    std::vector<std::string> row = {coupon::format_double(drop, 2)};
    for (SchemeKind kind : schemes) {
      auto s = scenario;
      s.cluster.drop_probability = drop;
      const auto rows = coupon::simulate::run_scenario(s, {kind});
      row.push_back(coupon::format_percent(
          static_cast<double>(rows[0].failures) /
              static_cast<double>(iterations),
          1));
    }
    table.add_row(std::move(row));
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("\nExpected shape: uncoded fails ~1-(1-p)^n (any loss is "
              "fatal); CR fails once losses\nexceed s = r-1 = %zu of %zu; "
              "FR and BCC fail only when a whole batch/block loses\nall "
              "its replicas — with ~n/B = %zu replicas per batch, BCC "
              "still recovers most\niterations at 40%% drop.\n",
              scenario.load - 1, scenario.num_workers,
              scenario.num_workers /
                  ((scenario.num_units + scenario.load - 1) /
                   scenario.load));
  return 0;
}
