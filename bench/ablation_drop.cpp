// Ablation: robustness to lost messages (worker crash / packet drop),
// quantifying the paper's "Reliability" and "Universality" bullets. A
// wait-for-all scheme fails an iteration when *any* message is lost; CR
// fails once more than s = r - 1 messages are lost; BCC and FR fail only
// when every replica of some batch/block is lost — with n/B workers per
// batch on average, that stays negligible far beyond the point where the
// other schemes have collapsed.
//
// Built on the open scenario registry + SweepPlan: each drop probability
// is registered as a scenario with a single ScenarioRegistration-style
// call (no registry switch edits), then one schemes × scenarios
// cartesian sweep runs every (scheme, drop) cell in parallel on the
// thread pool.

#include <cstdio>
#include <string>
#include <vector>

#include "driver/driver.hpp"
#include "driver/scenario_registry.hpp"
#include "driver/sweep.hpp"
#include "util/util.hpp"

int main(int argc, char** argv) {
  coupon::CliFlags flags;
  flags.add_int("iterations", 300, "iterations per (scheme, drop) point");
  if (!flags.parse(argc, argv)) {
    return 1;
  }
  const auto iterations =
      static_cast<std::size_t>(flags.get_int("iterations"));

  const auto base = coupon::simulate::ec2_scenario_one();
  const std::vector<double> drops = {0.0, 0.01, 0.02, 0.05, 0.1, 0.2, 0.4};

  // Publish the drop axis as scenarios: this is all it takes to add a
  // straggler scenario to the system — coupon_run --list now shows them
  // too, for the lifetime of this process.
  coupon::driver::SweepPlan plan;
  for (double drop : drops) {
    const std::string name = "drop_" + coupon::format_double(drop, 2);
    coupon::driver::ScenarioRegistry::instance().add(
        {.name = name,
         .description = "shifted_exp plus " +
                        coupon::format_percent(drop, 0) +
                        " i.i.d. message loss (sim only)",
         .sim_only = true,
         .builder = [drop](std::size_t) {
           auto s = coupon::driver::ScenarioRegistry::instance().build(
               "shifted_exp", 0);
           s.cluster.drop_probability = drop;
           return s;
         },
         .param_builder = {}});
    plan.scenarios.push_back(name);
  }

  plan.base.num_workers = base.num_workers;
  plan.base.num_units = base.num_units;
  plan.base.load = base.load;
  plan.base.seed = base.seed;
  plan.base.iterations = iterations;
  plan.base.record_trace = false;  // summary table only
  plan.schemes = {"uncoded", "cr", "fr", "bcc"};

  const auto records = coupon::driver::run_sweep(plan);

  std::printf("Message-drop ablation — %s, %zu iterations per point, "
              "r = %zu\n\n", base.name.c_str(), iterations, base.load);
  coupon::AsciiTable table({"drop prob", "uncoded failed", "CR failed",
                            "FR failed", "BCC failed"});
  // Cell order is scheme-major, scenario-minor:
  // records[s * drops + d] is scheme s at drop point d.
  for (std::size_t d = 0; d < drops.size(); ++d) {
    std::vector<std::string> row = {coupon::format_double(drops[d], 2)};
    for (std::size_t s = 0; s < plan.schemes.size(); ++s) {
      const auto& record = records[s * drops.size() + d];
      row.push_back(coupon::format_percent(
          static_cast<double>(record.failures) /
              static_cast<double>(iterations),
          1));
    }
    table.add_row(std::move(row));
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("\nExpected shape: uncoded fails ~1-(1-p)^n (any loss is "
              "fatal); CR fails once losses\nexceed s = r-1 = %zu of %zu; "
              "FR and BCC fail only when a whole batch/block loses\nall "
              "its replicas — with ~n/B = %zu replicas per batch, BCC "
              "still recovers most\niterations at 40%% drop.\n",
              base.load - 1, base.num_workers,
              base.num_workers /
                  ((base.num_units + base.load - 1) / base.load));
  return 0;
}
