// Reproduces Table I of the paper: breakdown of the running times of the
// uncoded, cyclic repetition, and BCC schemes in scenario one (n = 50
// workers, m = 50 data batches, r = 10, 100 iterations).
//
// Paper reference values:
//   scheme   K    comm (s)  comp (s)  total (s)
//   uncoded  50   28.556    0.230     28.786
//   CR       41   12.031    1.959     13.990
//   BCC      11    3.043    1.162      4.205

#include <cstdio>

#include "simulate/simulate.hpp"
#include "util/util.hpp"

int main(int argc, char** argv) {
  coupon::CliFlags flags;
  flags.add_int("iterations", 100, "GD iterations per run (paper: 100)");
  if (!flags.parse(argc, argv)) {
    return 1;
  }

  auto scenario = coupon::simulate::ec2_scenario_one();
  scenario.iterations = static_cast<std::size_t>(flags.get_int("iterations"));

  using coupon::core::SchemeKind;
  const auto rows = coupon::simulate::run_scenario(
      scenario, {SchemeKind::kUncoded, SchemeKind::kCyclicRepetition,
                 SchemeKind::kBcc});

  std::printf("Table I — running-time breakdown, %s\n\n",
              scenario.name.c_str());
  coupon::AsciiTable table({"scheme", "recovery threshold",
                            "communication time (s)", "computation time (s)",
                            "total running time (s)"});
  table.set_align(0, coupon::Align::kLeft);
  for (const auto& row : rows) {
    table.add_row({row.scheme,
                   coupon::format_double(row.recovery_threshold, 1),
                   coupon::format_double(row.comm_time, 3),
                   coupon::format_double(row.compute_time, 3),
                   coupon::format_double(row.total_time, 3)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nPaper (EC2 t2.micro): uncoded K=50 total=28.786s, CR K=41 "
      "total=13.990s, BCC K=11 total=4.205s.\n"
      "Shape targets: K ordering 11 < 41 < 50, communication >> "
      "computation, total ~ proportional to K.\n");
  return 0;
}
