// Reproduces Table I of the paper: breakdown of the running times of the
// uncoded, cyclic repetition, and BCC schemes in scenario one (n = 50
// workers, m = 50 data batches, r = 10, 100 iterations).
//
// Paper reference values:
//   scheme   K    comm (s)  comp (s)  total (s)
//   uncoded  50   28.556    0.230     28.786
//   CR       41   12.031    1.959     13.990
//   BCC      11    3.043    1.162      4.205
//
// Built on the driver's SweepPlan: the scheme axis runs in parallel on
// the thread pool with per-cell deterministic seeding, and the
// table/CSV rendering is shared with table2 and fig4.

#include <cstdio>

#include "driver/driver.hpp"
#include "driver/predict.hpp"
#include "driver/sweep.hpp"
#include "util/util.hpp"

int main(int argc, char** argv) {
  coupon::CliFlags flags;
  flags.add_int("iterations", 100, "GD iterations per run (paper: 100)")
      .add_string("csv", "", "also write the breakdown as CSV to this path");
  if (!flags.parse(argc, argv)) {
    return 1;
  }

  coupon::driver::SweepPlan plan;
  plan.base = coupon::driver::config_from_sim_scenario(
      coupon::simulate::ec2_scenario_one());
  plan.base.iterations = static_cast<std::size_t>(flags.get_int("iterations"));
  plan.base.record_trace = false;  // summary table + CSV only
  plan.schemes = {"uncoded", "cr", "bcc"};

  const auto records = coupon::driver::run_sweep(plan);

  std::printf("Table I — running-time breakdown, scenario one (n=%zu, m=%zu "
              "batches)\n\n", plan.base.num_workers, plan.base.num_units);
  std::fputs(coupon::driver::summary_table(records).render().c_str(), stdout);
  std::fputs(coupon::driver::measured_vs_predicted_table(plan.base, records)
                 .render()
                 .c_str(),
             stdout);
  std::printf(
      "\nPaper (EC2 t2.micro): uncoded K=50 total=28.786s, CR K=41 "
      "total=13.990s, BCC K=11 total=4.205s.\n"
      "Shape targets: K ordering 11 < 41 < 50, communication >> "
      "computation, total ~ proportional to K.\n");

  const std::string csv_path = flags.get_string("csv");
  if (!csv_path.empty() &&
      !coupon::driver::write_records_to_path(
          csv_path, records, coupon::driver::RecordFormat::kSummaryCsv)) {
    return 1;
  }
  return 0;
}
