// Ablation: total running time vs computational load r (design choice #2
// of DESIGN.md §5). The paper fixes r = 10 "based on the memory
// constraints of the instances so as to minimize the total running
// times"; this sweep shows the tradeoff that statement describes —
// larger r buys a lower recovery threshold (less waiting, less master
// ingress) at the price of more per-worker compute, with the optimum
// moving right as the cluster grows.
//
// BCC results are averaged over several independent placements: with a
// single fixed placement the realized K is itself random (a batch picked
// by few workers inflates the wait), and at small r the placement may
// not even cover every batch — the `failed` column counts iterations the
// master could not recover at all.
//
// Built on the driver's SweepPlan: schemes × r-axis × placement-seed
// axis, all cells in parallel on the thread pool; the placement average
// is a fold over the returned records.

#include <cmath>
#include <cstdio>
#include <limits>
#include <vector>

#include "driver/driver.hpp"
#include "driver/predict.hpp"
#include "driver/sweep.hpp"
#include "util/util.hpp"

int main(int argc, char** argv) {
  coupon::CliFlags flags;
  flags.add_int("iterations", 100, "GD iterations per run")
      .add_int("placements", 5, "independent placements to average over");
  if (!flags.parse(argc, argv)) {
    return 1;
  }
  const auto iterations =
      static_cast<std::size_t>(flags.get_int("iterations"));
  const auto placements =
      static_cast<std::size_t>(flags.get_int("placements"));

  for (const auto& base : {coupon::simulate::ec2_scenario_one(),
                           coupon::simulate::ec2_scenario_two()}) {
    coupon::driver::SweepPlan plan;
    plan.base = coupon::driver::config_from_sim_scenario(base);
    plan.base.iterations = iterations;
    plan.base.record_trace = false;  // summary table only
    plan.schemes = {"bcc", "cr"};
    for (std::size_t r : {2u, 5u, 10u, 20u, 25u, 50u}) {
      if (r <= base.num_units) {
        plan.loads.push_back(r);
      }
    }
    for (std::size_t p = 0; p < placements; ++p) {
      plan.seeds.push_back(base.seed + 1000 * (p + 1));
    }

    const auto records = coupon::driver::run_sweep(plan);

    std::printf("r sweep — %s, %zu iterations x %zu placements\n\n",
                base.name.c_str(), iterations, placements);
    coupon::AsciiTable table({"r", "BCC K", "BCC total (s)", "BCC pred (s)",
                              "BCC failed", "CR K", "CR total (s)",
                              "CR pred (s)"});
    // Cell order is scheme-major, then r, then placement seed:
    // records[s * loads * placements + l * placements + p].
    const std::size_t stride = plan.loads.size() * placements;
    // Measured and oracle-predicted per-(scheme, r) totals, averaged over
    // the same placement seeds; argmins drive the r* overlay below.
    std::vector<double> bcc_measured, bcc_predicted, cr_measured,
        cr_predicted;
    for (std::size_t l = 0; l < plan.loads.size(); ++l) {
      double bcc_k = 0.0, bcc_total = 0.0, cr_k = 0.0, cr_total = 0.0;
      double bcc_pred = 0.0, cr_pred = 0.0;
      std::size_t bcc_failed = 0;
      for (std::size_t p = 0; p < placements; ++p) {
        const auto& bcc = records[0 * stride + l * placements + p];
        const auto& cr = records[1 * stride + l * placements + p];
        bcc_k += bcc.recovery_threshold;
        bcc_total += bcc.total_time;
        bcc_failed += bcc.failures;
        cr_k += cr.recovery_threshold;
        cr_total += cr.total_time;
        for (const auto& cell : {&bcc, &cr}) {
          auto config = plan.base;
          config.scheme = cell->scheme;
          config.load = cell->load;
          config.seed = cell->seed;
          const auto prediction = coupon::driver::predict_cell(config);
          // An unsupported cell poisons its (scheme, r) average so the
          // r* argmin can never select it.
          const double total =
              prediction.has_value()
                  ? prediction->expected_time * static_cast<double>(iterations)
                  : std::numeric_limits<double>::infinity();
          (cell == &bcc ? bcc_pred : cr_pred) += total;
        }
      }
      const auto denom = static_cast<double>(placements);
      bcc_measured.push_back(bcc_total / denom);
      bcc_predicted.push_back(bcc_pred / denom);
      cr_measured.push_back(cr_total / denom);
      cr_predicted.push_back(cr_pred / denom);
      const auto pred_cell = [denom](double total) {
        return std::isfinite(total) ? coupon::format_double(total / denom, 3)
                                    : std::string("-");
      };
      table.add_row({std::to_string(plan.loads[l]),
                     coupon::format_double(bcc_k / denom, 1),
                     coupon::format_double(bcc_total / denom, 3),
                     pred_cell(bcc_pred),
                     std::to_string(bcc_failed / placements),
                     coupon::format_double(cr_k / denom, 1),
                     coupon::format_double(cr_total / denom, 3),
                     pred_cell(cr_pred)});
    }
    std::fputs(table.render().c_str(), stdout);
    const auto argmin = [](const std::vector<double>& values) {
      std::size_t best = 0;
      for (std::size_t i = 1; i < values.size(); ++i) {
        if (values[i] < values[best]) {
          best = i;
        }
      }
      return best;
    };
    std::printf("  predictor r* vs measured best r — BCC: %zu vs %zu, "
                "CR: %zu vs %zu\n\n",
                plan.loads[argmin(bcc_predicted)],
                plan.loads[argmin(bcc_measured)],
                plan.loads[argmin(cr_predicted)],
                plan.loads[argmin(cr_measured)]);
  }
  std::printf("Shape: BCC total falls steeply with r (K ~ (m/r)log(m/r)) "
              "then flattens once compute\ndominates; CR needs much "
              "larger r for the same K. The paper's r = 10 sits near\n"
              "the BCC knee in both scenarios. At r = 2 the batch count "
              "approaches n and random\nplacements stop covering — the "
              "regime Theorem 1 excludes via 'sufficiently large n'.\n");
  return 0;
}
