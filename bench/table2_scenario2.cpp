// Reproduces Table II of the paper: breakdown of the running times of
// the uncoded, cyclic repetition, and BCC schemes in scenario two
// (n = 100 workers, m = 100 data batches, r = 10, 100 iterations).
//
// Paper reference values:
//   scheme   K     comm (s)  comp (s)  total (s)
//   uncoded  100   31.567    1.453     33.020
//   CR        91   24.698    4.784     29.482
//   BCC       25    7.246    1.685      8.931
//
// Built on the driver's SweepPlan: the scheme axis runs in parallel on
// the thread pool with per-cell deterministic seeding, and the
// table/CSV rendering is shared with table1 and fig4.

#include <cstdio>

#include "driver/driver.hpp"
#include "driver/predict.hpp"
#include "driver/sweep.hpp"
#include "util/util.hpp"

int main(int argc, char** argv) {
  coupon::CliFlags flags;
  flags.add_int("iterations", 100, "GD iterations per run (paper: 100)")
      .add_string("csv", "", "also write the breakdown as CSV to this path");
  if (!flags.parse(argc, argv)) {
    return 1;
  }

  coupon::driver::SweepPlan plan;
  plan.base = coupon::driver::config_from_sim_scenario(
      coupon::simulate::ec2_scenario_two());
  plan.base.iterations = static_cast<std::size_t>(flags.get_int("iterations"));
  plan.base.record_trace = false;  // summary table + CSV only
  plan.schemes = {"uncoded", "cr", "bcc"};

  const auto records = coupon::driver::run_sweep(plan);

  std::printf("Table II — running-time breakdown, scenario two (n=%zu, "
              "m=%zu batches)\n\n", plan.base.num_workers,
              plan.base.num_units);
  std::fputs(coupon::driver::summary_table(records).render().c_str(), stdout);
  std::fputs(coupon::driver::measured_vs_predicted_table(plan.base, records)
                 .render()
                 .c_str(),
             stdout);
  std::printf(
      "\nPaper (EC2 t2.micro): uncoded K=100 total=33.020s, CR K=91 "
      "total=29.482s, BCC K=25 total=8.931s.\n"
      "Shape targets: K ordering ~29 < 91 < 100, communication >> "
      "computation, total ~ proportional to K.\n");

  const std::string csv_path = flags.get_string("csv");
  if (!csv_path.empty() &&
      !coupon::driver::write_records_to_path(
          csv_path, records, coupon::driver::RecordFormat::kSummaryCsv)) {
    return 1;
  }
  return 0;
}
