// Reproduces Table II of the paper: breakdown of the running times of
// the uncoded, cyclic repetition, and BCC schemes in scenario two
// (n = 100 workers, m = 100 data batches, r = 10, 100 iterations).
//
// Paper reference values:
//   scheme   K     comm (s)  comp (s)  total (s)
//   uncoded  100   31.567    1.453     33.020
//   CR        91   24.698    4.784     29.482
//   BCC       25    7.246    1.685      8.931

#include <cstdio>

#include "simulate/simulate.hpp"
#include "util/util.hpp"

int main(int argc, char** argv) {
  coupon::CliFlags flags;
  flags.add_int("iterations", 100, "GD iterations per run (paper: 100)");
  if (!flags.parse(argc, argv)) {
    return 1;
  }

  auto scenario = coupon::simulate::ec2_scenario_two();
  scenario.iterations = static_cast<std::size_t>(flags.get_int("iterations"));

  using coupon::core::SchemeKind;
  const auto rows = coupon::simulate::run_scenario(
      scenario, {SchemeKind::kUncoded, SchemeKind::kCyclicRepetition,
                 SchemeKind::kBcc});

  std::printf("Table II — running-time breakdown, %s\n\n",
              scenario.name.c_str());
  coupon::AsciiTable table({"scheme", "recovery threshold",
                            "communication time (s)", "computation time (s)",
                            "total running time (s)"});
  table.set_align(0, coupon::Align::kLeft);
  for (const auto& row : rows) {
    table.add_row({row.scheme,
                   coupon::format_double(row.recovery_threshold, 1),
                   coupon::format_double(row.comm_time, 3),
                   coupon::format_double(row.compute_time, 3),
                   coupon::format_double(row.total_time, 3)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nPaper (EC2 t2.micro): uncoded K=100 total=33.020s, CR K=91 "
      "total=29.482s, BCC K=25 total=8.931s.\n"
      "Shape targets: K ordering ~29 < 91 < 100, communication >> "
      "computation, total ~ proportional to K.\n");
  return 0;
}
