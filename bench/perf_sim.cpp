// Simulator throughput benchmark: iterations/sec of simulate_run for
// uncoded/CR/FR/BCC at several (n, m) sizes, emitted as machine-readable
// JSON. This is the perf-regression anchor for the simulation hot path:
// the committed baseline lives in BENCH_sim.json at the repo root and the
// CI perf-smoke job fails on a large slowdown against it (see
// scripts/perf_check.py and README "Benchmarks & figures").
//
//   # full grid (refreshing BENCH_sim.json)
//   $ bench_perf_sim --out BENCH_sim.json
//   # CI quick mode: same grid, ~10x fewer iterations per cell
//   $ bench_perf_sim --quick --out perf_quick.json
//
// Method: per cell, the scheme is constructed once (placement and coding
// matrix are not what we measure), then simulate_run executes the cell's
// iteration count; the cell is repeated --reps times and the fastest
// repetition wins (minimum-time estimator, robust to scheduler noise).
// Results are deterministic in everything but wall time.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "core/gradient_source.hpp"
#include "core/scheme_registry.hpp"
#include "data/batching.hpp"
#include "data/synthetic.hpp"
#include "driver/record.hpp"
#include "engine/engine.hpp"
#include "opt/opt.hpp"
#include "simulate/cluster_sim.hpp"
#include "simulate/experiment.hpp"
#include "stats/rng.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

namespace {

using namespace coupon;

struct Cell {
  const char* scheme;
  std::size_t workers;
  std::size_t units;
  std::size_t load;
  std::size_t iterations;  // full-mode count; quick mode divides by 10
  /// Training mode: run the TrainingEngine over the simulated provider
  /// (real gradients) instead of the timing-only kernel. Reported under
  /// the "train:<scheme>" key so perf_check matches the right baseline.
  bool train = false;
  /// Batched mode: run this many same-shape cells (distinct placements
  /// and RNG streams) through one simulate::BatchedKernel pass and
  /// report aggregate cell-iterations/sec under "batch<k>:<scheme>" —
  /// directly comparable with the unbatched row of the same shape.
  std::size_t batch = 0;
};

/// Quick (CI) mode skips rows above this worker count: the n = 10^5 and
/// 10^6 rows exist to pin million-worker scaling locally, not to spend
/// runner minutes (see scripts/perf_check.py's per-row time budget).
constexpr std::size_t kQuickMaxWorkers = 10'000;

/// The benchmark grid. Every scheme sees a small, the paper's scenario
/// one, and a large shape; all satisfy m == n (CR/FR) and r | n (FR).
/// The train rows gate the convergence path (engine + encode + decode)
/// at the paper-scale shapes (n in {20, 50, 100} — ROADMAP item 4's
/// training-path gap is tracked here). The large-n rows (10^3..10^6)
/// gate the threshold-selection kernel's million-worker scaling; CR is
/// absent there because its n x n coding matrix is quadratic in memory
/// by design. BCC loads grow with n to keep coverage failure rare
/// (failure prob ~ B * exp(-n/B), B = m/r).
const std::vector<Cell>& grid() {
  static const std::vector<Cell> cells = {
      {"uncoded", 20, 20, 4, 5000},  {"cr", 20, 20, 4, 5000},
      {"fr", 20, 20, 4, 5000},       {"bcc", 20, 20, 4, 5000},
      {"uncoded", 50, 50, 10, 2000}, {"cr", 50, 50, 10, 2000},
      {"fr", 50, 50, 10, 2000},      {"bcc", 50, 50, 10, 2000},
      {"uncoded", 100, 100, 10, 1000}, {"cr", 100, 100, 10, 1000},
      {"fr", 100, 100, 10, 1000},    {"bcc", 100, 100, 10, 1000},
      // Large-n scaling rows (selection kernel; DESIGN.md §7.4).
      {"uncoded", 1'000, 1'000, 10, 1000},
      {"fr", 1'000, 1'000, 10, 1000},
      {"bcc", 1'000, 1'000, 10, 1000},
      {"uncoded", 10'000, 10'000, 20, 200},
      {"fr", 10'000, 10'000, 20, 200},
      {"bcc", 10'000, 10'000, 20, 200},
      {"uncoded", 100'000, 100'000, 40, 30},
      {"fr", 100'000, 100'000, 40, 30},
      {"bcc", 100'000, 100'000, 40, 30},
      {"uncoded", 1'000'000, 1'000'000, 40, 5},
      {"bcc", 1'000'000, 1'000'000, 40, 5},
      // Structure-of-arrays batching (DESIGN.md §7.5).
      {"bcc", 1'000, 1'000, 10, 1000, /*train=*/false, /*batch=*/8},
      {"fr", 1'000, 1'000, 10, 1000, /*train=*/false, /*batch=*/8},
      // Training-path rows (TrainingEngine over the simulated provider).
      {"uncoded", 20, 20, 4, 2000, /*train=*/true},
      {"bcc", 20, 20, 4, 2000, /*train=*/true},
      {"uncoded", 50, 50, 10, 500, /*train=*/true},
      {"bcc", 50, 50, 10, 500, /*train=*/true},
      {"uncoded", 100, 100, 10, 200, /*train=*/true},
      {"bcc", 100, 100, 10, 200, /*train=*/true},
      // Gradient-coding training rows (r-unit messages, per-unit decode)
      // and the lockstep multi-seed train kernel (DESIGN.md §12).
      {"gc_cyclic", 50, 50, 10, 500, /*train=*/true},
      {"sgc", 50, 50, 10, 500, /*train=*/true},
      {"bcc", 50, 50, 10, 500, /*train=*/true, /*batch=*/8},
  };
  return cells;
}

struct Result {
  Cell cell;
  std::size_t iterations = 0;  // actually run per repetition
  std::size_t reps = 0;
  double best_seconds = 0.0;
  double iters_per_sec = 0.0;

  /// The perf_check matching key: "<scheme>", "train:<scheme>",
  /// "batch<k>:<scheme>", or "batch<k>-train:<scheme>".
  std::string key() const {
    if (cell.train && cell.batch > 0) {
      return "batch" + std::to_string(cell.batch) + "-train:" + cell.scheme;
    }
    if (cell.train) {
      return std::string("train:") + cell.scheme;
    }
    if (cell.batch > 0) {
      return "batch" + std::to_string(cell.batch) + ":" + cell.scheme;
    }
    return cell.scheme;
  }
};

Result run_cell(const Cell& cell, std::size_t iterations, std::size_t reps) {
  const simulate::ClusterConfig cluster = simulate::ec2_cluster();

  core::SchemeConfig config;
  config.num_workers = cell.workers;
  config.num_units = cell.units;
  config.load = cell.load;
  config.bcc_seed_first_batches = cell.train;  // no failed train iterations

  stats::Rng build_rng(0xBE5C0000 + cell.workers);
  const auto scheme =
      core::SchemeRegistry::instance().create(cell.scheme, config, build_rng);

  // Batched rows: `cell.batch` same-shape cells with distinct placements,
  // one lockstep BatchedKernel pass (kernel construction is measured,
  // matching simulate_run's per-call kernel setup in the plain rows).
  std::vector<std::unique_ptr<core::Scheme>> batch_schemes;
  for (std::size_t i = 1; i < cell.batch; ++i) {
    batch_schemes.push_back(
        core::SchemeRegistry::instance().create(cell.scheme, config, build_rng));
  }

  // Training rows: a small logistic workload (the convergence path's
  // gradient cost scales with p and examples/unit; the gate targets the
  // engine + encode/decode overhead, not BLAS throughput).
  data::SyntheticProblem problem;
  std::optional<data::BatchPartition> partition;
  std::unique_ptr<core::GroupedBatchSource> source;
  if (cell.train) {
    constexpr std::size_t kFeatures = 20;
    constexpr std::size_t kExamplesPerUnit = 5;
    stats::Rng data_rng(0xDA7A + cell.workers);
    data::SyntheticConfig dconf;
    dconf.num_features = kFeatures;
    problem =
        data::generate_logreg(cell.units * kExamplesPerUnit, dconf, data_rng);
    partition.emplace(cell.units * kExamplesPerUnit, kExamplesPerUnit);
    source = std::make_unique<core::GroupedBatchSource>(problem.dataset,
                                                        *partition);
  }

  // Batched training rows share one cluster config across cells (the
  // provider holds it by shared_ptr).
  const auto shared_cluster =
      std::make_shared<const simulate::ClusterConfig>(cluster);

  Result result;
  result.cell = cell;
  result.iterations = iterations;
  result.reps = reps;
  result.best_seconds = -1.0;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    stats::Rng rng(0x5EED + rep);
    WallTimer timer;
    double elapsed = 0.0;
    if (cell.train && cell.batch > 0) {
      // Lockstep multi-seed training: one BatchedTrainKernel pass over
      // `batch` same-shape cells (kernel construction is measured,
      // matching the per-call setup of the plain train rows).
      std::vector<std::unique_ptr<opt::IterativeOptimizer>> optimizers;
      std::vector<engine::BatchedTrainCell> cells;
      cells.reserve(cell.batch);
      for (std::size_t i = 0; i < cell.batch; ++i) {
        engine::BatchedTrainCell tc;
        tc.scheme = i == 0 ? scheme.get() : batch_schemes[i - 1].get();
        tc.source = source.get();
        tc.cluster = shared_cluster;
        tc.rng = stats::Rng(0x5EED + rep + 7919 * i);
        optimizers.push_back(std::make_unique<opt::NesterovGradient>(
            source->dim(), opt::LearningRateSchedule::constant(2.0)));
        tc.optimizer = optimizers.back().get();
        tc.options.iterations = iterations;
        cells.push_back(std::move(tc));
      }
      const auto reports =
          engine::BatchedTrainKernel(std::move(cells)).run();
      elapsed = timer.seconds();
      for (const auto& report : reports) {
        if (report.failed_iterations != 0) {
          std::fprintf(stderr,
                       "perf_sim: batched training run dropped iterations\n");
          std::exit(1);
        }
      }
    } else if (cell.train) {
      engine::SimulatedProvider provider(*scheme, *source, cluster, rng);
      engine::TrainingEngine protocol(*scheme, *source, provider);
      opt::NesterovGradient optimizer(
          source->dim(), opt::LearningRateSchedule::constant(2.0));
      engine::TrainOptions options;
      options.iterations = iterations;
      const auto report = protocol.train(optimizer, options);
      elapsed = timer.seconds();
      // A failed iteration skips the gradient/decode work under
      // measurement and would silently inflate train-iters/sec.
      if (report.failed_iterations != 0) {
        std::fprintf(stderr, "perf_sim: training run dropped iterations\n");
        std::exit(1);
      }
    } else if (cell.batch > 0) {
      simulate::RunOptions options;
      options.iterations = iterations;
      options.record_trace = false;
      std::vector<simulate::BatchedCell> cells;
      cells.reserve(cell.batch);
      for (std::size_t i = 0; i < cell.batch; ++i) {
        simulate::BatchedCell bc;
        bc.scheme = i == 0 ? scheme.get() : batch_schemes[i - 1].get();
        bc.config = &cluster;
        bc.rng = stats::Rng(0x5EED + rep + 7919 * i);
        bc.options = options;
        cells.push_back(std::move(bc));
      }
      simulate::BatchedKernel kernel(std::move(cells));
      const auto runs = kernel.run();
      elapsed = timer.seconds();
      for (const auto& run : runs) {
        if (run.workers_heard.count() != iterations) {
          std::fprintf(stderr, "perf_sim: batched run dropped iterations\n");
          std::exit(1);
        }
      }
    } else {
      simulate::RunOptions options;
      options.iterations = iterations;
      options.record_trace = false;
      const auto run = simulate::simulate_run(*scheme, cluster, options, rng);
      elapsed = timer.seconds();
      // Touch the aggregate so the run cannot be optimized away.
      if (run.workers_heard.count() != iterations) {
        std::fprintf(stderr, "perf_sim: run dropped iterations\n");
        std::exit(1);
      }
    }
    if (result.best_seconds < 0.0 || elapsed < result.best_seconds) {
      result.best_seconds = elapsed;
    }
  }
  // Batched rows report aggregate cell-iterations/sec so the row is
  // directly comparable with the unbatched row of the same shape.
  const std::size_t effective =
      iterations * std::max<std::size_t>(1, cell.batch);
  result.iters_per_sec =
      static_cast<double>(effective) / result.best_seconds;
  return result;
}

void write_json(std::ostream& os, const std::vector<Result>& results,
                bool quick) {
  os << "{\n  \"benchmark\": \"perf_sim\",\n  \"mode\": \""
     << (quick ? "quick" : "full") << "\",\n  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    char line[256];
    std::snprintf(line, sizeof(line),
                  "    {\"scheme\": \"%s\", \"workers\": %zu, \"units\": %zu, "
                  "\"load\": %zu, \"iterations\": %zu, \"reps\": %zu, "
                  "\"best_seconds\": %.6f, \"iters_per_sec\": %.1f}%s\n",
                  r.key().c_str(), r.cell.workers, r.cell.units, r.cell.load,
                  r.iterations, r.reps, r.best_seconds, r.iters_per_sec,
                  i + 1 == results.size() ? "" : ",");
    os << line;
  }
  os << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags;
  flags
      .add_bool("quick", false,
                "CI mode: ~10x fewer iterations per cell (same grid keys)")
      .add_int("reps", 3, "repetitions per cell; fastest wins")
      .add_string("out", "-", "JSON output path ('-' = stdout)");
  if (!flags.parse(argc, argv)) {
    return 1;
  }
  const bool quick = flags.get_bool("quick");
  const auto reps = static_cast<std::size_t>(flags.get_int("reps"));

  std::vector<Result> results;
  results.reserve(grid().size());
  for (const Cell& cell : grid()) {
    if (quick && cell.workers > kQuickMaxWorkers) {
      continue;  // million-worker rows are local-only (see kQuickMaxWorkers)
    }
    const std::size_t iterations =
        quick ? std::max<std::size_t>(std::min<std::size_t>(100, cell.iterations),
                                      cell.iterations / 10)
              : cell.iterations;
    results.push_back(run_cell(cell, iterations, reps));
    const Result& r = results.back();
    std::fprintf(stderr, "%-13s n=%-4zu m=%-4zu r=%-3zu %8.0f iters/sec\n",
                 r.key().c_str(), r.cell.workers, r.cell.units, r.cell.load,
                 r.iters_per_sec);
  }

  const std::string out = flags.get_string("out");
  if (!driver::with_output_stream(
          out, [&](std::ostream& os) { write_json(os, results, quick); })) {
    return 1;
  }
  return 0;
}
