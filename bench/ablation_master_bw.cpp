// Ablation: sensitivity of the Fig. 4 conclusions to the master ingress
// bandwidth (design choice #1 of DESIGN.md §5). The serialized master
// link is what makes total time proportional to the recovery threshold;
// this sweep scales the per-gradient transfer time up and down and shows
// when the ranking (BCC < CR < uncoded) and the speedup margins hold.

#include <cstdio>

#include "simulate/simulate.hpp"
#include "util/util.hpp"

int main(int argc, char** argv) {
  coupon::CliFlags flags;
  flags.add_int("iterations", 60, "GD iterations per run");
  if (!flags.parse(argc, argv)) {
    return 1;
  }

  const std::vector<std::string> kinds = {"uncoded", "cr", "bcc"};

  auto base = coupon::simulate::ec2_scenario_one();
  base.iterations = static_cast<std::size_t>(flags.get_int("iterations"));
  const double base_bw = base.cluster.unit_transfer_seconds;

  std::printf("Master-ingress bandwidth sweep — %s\n"
              "(transfer scale 1.0 = %.1f ms per gradient unit)\n\n",
              base.name.c_str(), base_bw * 1e3);
  coupon::AsciiTable table({"transfer scale", "uncoded total (s)",
                            "CR total (s)", "BCC total (s)",
                            "BCC vs uncoded", "comm-dominated?"});
  for (double scale : {0.01, 0.1, 0.5, 1.0, 2.0, 10.0}) {
    auto scenario = base;
    scenario.cluster.unit_transfer_seconds = base_bw * scale;
    const auto rows = coupon::simulate::run_scenario(scenario, kinds);
    const bool comm_dominated = rows[0].comm_time > rows[0].compute_time;
    table.add_row(
        {coupon::format_double(scale, 2),
         coupon::format_double(rows[0].total_time, 3),
         coupon::format_double(rows[1].total_time, 3),
         coupon::format_double(rows[2].total_time, 3),
         coupon::format_percent(
             coupon::simulate::speedup_fraction(rows[2], rows[0])),
         comm_dominated ? "yes" : "no"});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("\nThe BCC < CR < uncoded ranking persists at every "
              "bandwidth (lower K also means\nfewer straggler waits), but "
              "the paper's large margins require the comm-dominated\n"
              "regime — at very fast ingress the compute tail sets the "
              "gap instead.\n");
  return 0;
}
