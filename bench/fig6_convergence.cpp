// Convergence vs. (simulated) wall-clock — the paper's headline EC2
// experiment, reproduced on the TrainingEngine's simulated provider:
// time for distributed GD to reach a target training loss under
// stragglers, for uncoded / CR / FR / BCC and the gradient-coding
// family (gc_cyclic / sgc / gc_nested) across latency-model scenarios.
// Each row also prints the measured per-iteration time next to the
// analytic oracle's exact E[T] for that scheme x scenario, so the table
// doubles as a measured-vs-theory check ("-" where no exact reduction
// exists: sgc's stochastic decode, scenarios outside the oracle's laws).
//
//   $ bench_fig6_convergence                 # paper-shaped grid
//   $ bench_fig6_convergence --quick         # CI smoke grid
//   $ bench_fig6_convergence --csv fig6.csv  # machine-readable rows
//
// Method: every cell shares one seed, hence one synthetic dataset; the
// target loss is what the straggler-free uncoded run reaches after
// --target_iters iterations (all schemes compute the same full gradient
// per successful iteration, so they cross the target after essentially
// the same number of iterations — what differs is how much simulated
// time each iteration costs under stragglers). Cells run through the
// parallel SweepPlan with stop_at_target, so the table is exactly
// "seconds until the loss first dipped below target".

#include <cstdio>
#include <exception>
#include <map>
#include <string>
#include <vector>

#include "analytic/predictor.hpp"
#include "core/scheme_registry.hpp"
#include "driver/driver.hpp"
#include "driver/scenario_registry.hpp"
#include "driver/sweep.hpp"
#include "stats/rng.hpp"
#include "util/util.hpp"

namespace {

using namespace coupon;

const std::vector<std::string>& schemes() {
  static const std::vector<std::string> names = {
      "uncoded", "cr", "fr", "bcc", "gc_cyclic", "sgc", "gc_nested"};
  return names;
}

const std::vector<std::string>& scenarios() {
  static const std::vector<std::string> names = {"shifted_exp", "heavy_tail",
                                                 "bursty"};
  return names;
}

/// The oracle's exact per-iteration E[T] for one grid cell, or "-" when
/// no exact reduction exists (sgc's stochastic decode; unsupported
/// scheme/law pairs). Rebuilds the cell's scheme from its seed; for
/// deterministic placements (everything in the grid but bcc) that is the
/// identical realization, while bcc — whose train-mode placement draw
/// happens after the data draw — gets a same-seed, same-law reference
/// placement rather than the exact conditional one.
std::string theory_seconds_per_iter(const driver::RunRecord& record) {
  try {
    const auto scenario = driver::ScenarioRegistry::instance().build(
        record.scenario, record.num_workers);
    core::SchemeConfig config;
    config.num_workers = record.num_workers;
    config.num_units = record.num_units;
    config.load = record.load;
    stats::Rng rng(record.seed);
    const auto scheme =
        core::SchemeRegistry::instance().create(record.scheme, config, rng);
    analytic::PredictOptions options;
    options.quantiles = false;
    const auto prediction =
        analytic::predict(*scheme, scenario.cluster, options);
    if (!prediction.has_value()) {
      return "-";
    }
    return format_double(prediction->expected_time, 4);
  } catch (const std::exception&) {
    return "-";
  }
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags;
  flags
      .add_bool("quick", false,
                "CI smoke mode: smaller cluster, fewer iterations")
      .add_int("workers", 50, "workers n (= units m; r must divide n for FR)")
      .add_int("load", 10, "computational load r")
      .add_int("iterations", 200, "iteration cap per run")
      .add_int("target_iters", 40,
               "target loss = straggler-free loss after this many iterations")
      .add_int("features", 100, "feature dimension p")
      .add_int("examples_per_unit", 20, "examples per unit (super example)")
      .add_int("seed", 7, "PRNG seed (shared: one dataset for every cell)")
      .add_int("threads", 0, "sweep threads (0 = hardware)")
      .add_string("csv", "", "also write rows as CSV to this path");
  if (!flags.parse(argc, argv)) {
    return 1;
  }
  const bool quick = flags.get_bool("quick");

  driver::ExperimentConfig base;
  base.runtime = "sim";
  base.train = true;
  base.record_trace = false;
  base.num_workers =
      quick ? 20 : static_cast<std::size_t>(flags.get_int("workers"));
  base.num_units = base.num_workers;
  base.load = quick ? 4 : static_cast<std::size_t>(flags.get_int("load"));
  base.iterations =
      quick ? 60 : static_cast<std::size_t>(flags.get_int("iterations"));
  base.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  base.features =
      quick ? 40 : static_cast<std::size_t>(flags.get_int("features"));
  base.examples_per_unit =
      quick ? 10 : static_cast<std::size_t>(flags.get_int("examples_per_unit"));
  const std::size_t target_iters =
      quick ? 15 : static_cast<std::size_t>(flags.get_int("target_iters"));

  // Step 1: the target — what a straggler-free uncoded run (the exact
  // full-gradient trajectory every scheme follows) reaches after
  // target_iters iterations.
  double target_loss = 0.0;
  try {
    auto reference = base;
    reference.scheme = "uncoded";
    reference.scenario = "no_stragglers";
    reference.iterations = target_iters;
    const auto record = driver::run_experiment(reference);
    target_loss = *record.final_loss;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "reference run failed: %s\n", e.what());
    return 1;
  }

  // Step 2: the grid, stopping each run at the target.
  driver::SweepPlan plan;
  plan.base = base;
  plan.base.target_loss = target_loss;
  plan.base.stop_at_target = true;
  plan.schemes = schemes();
  plan.scenarios = scenarios();

  driver::SweepOptions options;
  options.threads = static_cast<std::size_t>(flags.get_int("threads"));
  std::vector<driver::RunRecord> records;
  try {
    records = driver::run_sweep(plan, options);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sweep failed: %s\n", e.what());
    return 1;
  }

  std::printf(
      "Time to target loss %.6f (straggler-free loss after %zu iters) — "
      "n = m = %zu, r = %zu, p = %zu\n\n",
      target_loss, target_iters, base.num_workers, base.load, base.features);

  AsciiTable table({"scheme", "scenario", "time to target (s)", "iters",
                    "mean K", "s/iter measured", "s/iter theory",
                    "final loss"});
  table.set_align(0, Align::kLeft);
  table.set_align(1, Align::kLeft);
  std::map<std::string, std::map<std::string, double>> time_by;  // scen->scheme
  for (const auto& record : records) {
    const bool reached = record.time_to_target.has_value();
    if (reached) {
      time_by[record.scenario][record.scheme] = *record.time_to_target;
    }
    const std::string measured =
        record.iterations_run > 0
            ? format_double(record.total_time /
                                static_cast<double>(record.iterations_run),
                            4)
            : std::string("-");
    table.add_row({record.scheme_display, record.scenario,
                   reached ? format_double(*record.time_to_target, 3)
                           : std::string("not reached"),
                   std::to_string(record.iterations_run),
                   format_double(record.recovery_threshold, 1),
                   measured, theory_seconds_per_iter(record),
                   record.final_loss ? format_double(*record.final_loss, 6)
                                     : std::string("-")});
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf("\nBCC speedup in time-to-target:\n");
  for (const auto& [scenario, by_scheme] : time_by) {
    const auto bcc = by_scheme.find("bcc");
    if (bcc == by_scheme.end()) {
      continue;
    }
    std::string line = "  " + scenario + ":";
    for (const char* baseline : {"uncoded", "cr"}) {
      const auto it = by_scheme.find(baseline);
      if (it != by_scheme.end() && it->second > 0.0) {
        line += " vs " + std::string(baseline) + " " +
                format_percent(1.0 - bcc->second / it->second);
      }
    }
    std::printf("%s\n", line.c_str());
  }
  std::printf(
      "\nEvery scheme applies the same full gradient per recovered "
      "iteration, so the\ncurves differ only in how much simulated time an "
      "iteration costs: BCC's low\nrecovery threshold buys the shortest "
      "time to any given loss (the paper's\nerror-vs-time comparison).\n");

  const std::string csv_path = flags.get_string("csv");
  if (!csv_path.empty()) {
    if (!driver::write_records_to_path(csv_path, records,
                                       driver::RecordFormat::kSummaryCsv)) {
      return 1;
    }
  }
  return 0;
}
