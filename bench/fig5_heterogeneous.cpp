// Reproduces Fig. 5 of the paper: average computation time of the
// load-balanced (LB) assignment vs the generalized BCC scheme on a
// heterogeneous cluster of n = 100 workers processing m = 500 examples.
//
// Paper configuration: shift a_i = 20 for all workers, straggle mu_i = 1
// for 95 workers and mu_i = 20 for the remaining 5; generalized BCC uses
// the P2-optimal loads for s = floor(m log m). The paper reports a
// 29.28% reduction in average computation time (LB ~ 1000, BCC ~ 700).
//
// A placement whose union cannot cover all m examples can never finish;
// runs report the coverage-conditional mean plus the failure rate (see
// EXPERIMENTS.md for why conditioning is the operational semantics).

#include <cmath>
#include <cstdio>
#include <numeric>

#include "core/hetero.hpp"
#include "stats/rng.hpp"
#include "stats/summary.hpp"
#include "util/util.hpp"

int main(int argc, char** argv) {
  coupon::CliFlags flags;
  flags.add_int("m", 500, "training examples (paper: 500)")
      .add_int("n", 100, "workers (paper: 100)")
      .add_int("fast", 5, "number of fast workers with mu = 20 (paper: 5)")
      .add_double("shift", 20.0, "shift parameter a_i (paper: 20)")
      .add_int("trials", 2000, "Monte Carlo trials")
      .add_int("refine_steps", 400,
               "hill-climb steps for the refined allocation (0 disables)")
      .add_int("seed", 31415, "PRNG seed");
  if (!flags.parse(argc, argv)) {
    return 1;
  }
  const auto m = static_cast<std::size_t>(flags.get_int("m"));
  const auto n = static_cast<std::size_t>(flags.get_int("n"));
  const auto fast = static_cast<std::size_t>(flags.get_int("fast"));
  const double shift = flags.get_double("shift");

  namespace hetero = coupon::core::hetero;
  std::vector<hetero::WorkerProfile> workers(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers[i] = {shift, i + fast < n ? 1.0 : 20.0};
  }

  const auto s =
      static_cast<std::size_t>(std::floor(static_cast<double>(m) *
                                          std::log(static_cast<double>(m))));
  const auto alloc = hetero::allocate_loads(workers, s, m);
  const auto lb_loads = hetero::load_balanced_assignment(workers, m);

  coupon::stats::Rng rng(static_cast<std::uint64_t>(flags.get_int("seed")));

  // Optional extension: MC local-search refinement of the P2 allocation.
  const auto refine_steps =
      static_cast<std::size_t>(flags.get_int("refine_steps"));
  std::vector<std::size_t> refined_loads = alloc.loads;
  if (refine_steps > 0) {
    const auto refined = hetero::refine_loads(workers, alloc.loads, s,
                                              refine_steps, 200, m, rng);
    refined_loads = refined.loads;
  }

  coupon::stats::OnlineStats bcc_time, refined_time, lb_time;
  std::size_t failures = 0;
  const auto trials = static_cast<std::size_t>(flags.get_int("trials"));
  for (std::size_t t = 0; t < trials; ++t) {
    const auto outcome =
        hetero::simulate_generalized_bcc(workers, alloc.loads, m, rng);
    if (!outcome.covered) {
      ++failures;
      continue;
    }
    bcc_time.add(outcome.time);
    lb_time.add(hetero::simulate_load_balanced(workers, lb_loads, rng));
    if (refine_steps > 0) {
      const auto refined_outcome =
          hetero::simulate_generalized_bcc(workers, refined_loads, m, rng);
      if (refined_outcome.covered) {
        refined_time.add(refined_outcome.time);
      }
    }
  }

  std::printf("Fig. 5 — heterogeneous cluster, m = %zu examples, n = %zu "
              "workers (%zu fast)\n\n", m, n, fast);
  const std::size_t lb_sum =
      std::accumulate(lb_loads.begin(), lb_loads.end(), std::size_t{0});
  const std::size_t bcc_sum =
      std::accumulate(alloc.loads.begin(), alloc.loads.end(), std::size_t{0});
  std::printf("generalized BCC loads: slow %zu / fast %zu (sum %zu, "
              "target s = %zu, deadline %.1f)\n",
              alloc.loads[0], alloc.loads[n - 1], bcc_sum, s, alloc.deadline);
  std::printf("LB loads:              slow %zu / fast %zu (sum %zu)\n\n",
              lb_loads[0], lb_loads[n - 1], lb_sum);

  coupon::AsciiTable table(
      {"assignment", "avg computation time", "std dev", "samples"});
  table.set_align(0, coupon::Align::kLeft);
  table.add_row({"LB (r_i ~ mu_i)", coupon::format_double(lb_time.mean(), 2),
                 coupon::format_double(lb_time.stddev(), 2),
                 std::to_string(lb_time.count())});
  table.add_row({"generalized BCC",
                 coupon::format_double(bcc_time.mean(), 2),
                 coupon::format_double(bcc_time.stddev(), 2),
                 std::to_string(bcc_time.count())});
  if (refined_time.count() > 0) {
    table.add_row({"generalized BCC (MC-refined loads)",
                   coupon::format_double(refined_time.mean(), 2),
                   coupon::format_double(refined_time.stddev(), 2),
                   std::to_string(refined_time.count())});
  }
  std::fputs(table.render().c_str(), stdout);

  const double reduction = 1.0 - bcc_time.mean() / lb_time.mean();
  std::printf("\nreduction in average computation time: %s "
              "(paper: 29.28%%)\n",
              coupon::format_percent(reduction, 2).c_str());
  std::printf("coverage failures: %zu / %zu placements (%s); means are "
              "conditional on coverage\n",
              failures, trials,
              coupon::format_percent(
                  static_cast<double>(failures) / static_cast<double>(trials),
                  1)
                  .c_str());
  return 0;
}
