// Validates the concentration behaviour behind Theorem 1 and Theorem 2:
//   * E[draws to collect N coupons] = N * H_N (the K_BCC identity), and
//   * Lemma 2's tail bound Pr(M >= (1+eps) m log m) <= m^{-eps}
// against empirical coupon-collector runs.

#include <cmath>
#include <cstdio>

#include "core/theory.hpp"
#include "stats/rng.hpp"
#include "util/util.hpp"

int main(int argc, char** argv) {
  coupon::CliFlags flags;
  flags.add_int("trials", 20000, "coupon-collector runs per configuration")
      .add_int("seed", 7, "PRNG seed");
  if (!flags.parse(argc, argv)) {
    return 1;
  }
  const auto trials = static_cast<std::size_t>(flags.get_int("trials"));
  coupon::stats::Rng rng(static_cast<std::uint64_t>(flags.get_int("seed")));
  namespace th = coupon::core::theory;

  std::printf("Coupon-collector expectation: E[M] = N * H_N (drives "
              "K_BCC of Eq. 2)\n\n");
  coupon::AsciiTable mean_table({"N (batches)", "N * H_N", "empirical mean",
                                 "rel. error"});
  for (std::size_t n : {2u, 5u, 10u, 20u, 50u, 100u}) {
    const double exact = th::coupon_expected_draws(n);
    const double mc = th::mc_coupon_draws(n, trials, rng);
    mean_table.add_row({std::to_string(n), coupon::format_double(exact, 2),
                        coupon::format_double(mc, 2),
                        coupon::format_percent(std::abs(mc - exact) / exact,
                                               2)});
  }
  std::fputs(mean_table.render().c_str(), stdout);

  std::printf("\nLemma 2 tail bound: Pr(M >= (1+eps) m log m) <= m^-eps "
              "(m = 20)\n\n");
  const std::size_t m = 20;
  coupon::AsciiTable tail_table(
      {"eps", "cutoff (draws)", "empirical tail", "bound m^-eps"});
  for (double eps : {0.0, 0.1, 0.25, 0.5, 1.0, 1.5}) {
    const double cutoff = (1.0 + eps) * static_cast<double>(m) *
                          std::log(static_cast<double>(m));
    std::size_t exceed = 0;
    for (std::size_t t = 0; t < trials; ++t) {
      if (static_cast<double>(th::coupon_draws_once(m, rng)) >= cutoff) {
        ++exceed;
      }
    }
    tail_table.add_row(
        {coupon::format_double(eps, 2), coupon::format_double(cutoff, 1),
         coupon::format_double(static_cast<double>(exceed) /
                                   static_cast<double>(trials),
                               4),
         coupon::format_double(th::lemma2_tail_bound(m, eps), 4)});
  }
  std::fputs(tail_table.render().c_str(), stdout);
  std::printf("\nEvery empirical tail must sit at or below its bound "
              "(up to MC noise).\n");
  return 0;
}
