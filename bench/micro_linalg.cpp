// Microbenchmarks for the linalg substrate (google-benchmark): the
// kernels that dominate worker compute (dot/axpy/gemv for logistic
// gradients) and master decode (QR least squares for CR).

#include <benchmark/benchmark.h>

#include "linalg/linalg.hpp"
#include "stats/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

using coupon::linalg::Matrix;

Matrix random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  coupon::stats::Rng rng(seed);
  Matrix m(rows, cols);
  for (auto& v : m.data()) {
    v = rng.normal();
  }
  return m;
}

std::vector<double> random_vector(std::size_t n, std::uint64_t seed) {
  coupon::stats::Rng rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) {
    x = rng.normal();
  }
  return v;
}

void BM_Dot(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto x = random_vector(n, 1);
  const auto y = random_vector(n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(coupon::linalg::dot(x, y));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n) * 16);
}
BENCHMARK(BM_Dot)->Arg(1000)->Arg(8000)->Arg(64000);

void BM_Axpy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto x = random_vector(n, 3);
  auto y = random_vector(n, 4);
  for (auto _ : state) {
    coupon::linalg::axpy(0.5, x, y);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_Axpy)->Arg(1000)->Arg(8000)->Arg(64000);

void BM_Gemv(benchmark::State& state) {
  const auto rows = static_cast<std::size_t>(state.range(0));
  const auto cols = static_cast<std::size_t>(state.range(1));
  const auto a = random_matrix(rows, cols, 5);
  const auto x = random_vector(cols, 6);
  std::vector<double> y(rows, 0.0);
  for (auto _ : state) {
    coupon::linalg::gemv(1.0, a, x, 0.0, y);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_Gemv)->Args({100, 8000})->Args({1000, 1000});

void BM_GemvParallel(benchmark::State& state) {
  const auto rows = static_cast<std::size_t>(state.range(0));
  const auto cols = static_cast<std::size_t>(state.range(1));
  const auto a = random_matrix(rows, cols, 7);
  const auto x = random_vector(cols, 8);
  std::vector<double> y(rows, 0.0);
  auto& pool = coupon::ThreadPool::shared();
  for (auto _ : state) {
    coupon::linalg::gemv_parallel(pool, 1.0, a, x, 0.0, y);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_GemvParallel)->Args({100, 8000})->Args({1000, 1000});

void BM_Gemm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = random_matrix(n, n, 9);
  const auto b = random_matrix(n, n, 10);
  Matrix c(n, n, 0.0);
  for (auto _ : state) {
    coupon::linalg::gemm(1.0, a, b, 0.0, c);
    benchmark::DoNotOptimize(c.data().data());
  }
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

void BM_LuSolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = random_matrix(n, n, 11);
  const auto b = random_vector(n, 12);
  for (auto _ : state) {
    benchmark::DoNotOptimize(coupon::linalg::solve(a, b));
  }
}
BENCHMARK(BM_LuSolve)->Arg(25)->Arg(50)->Arg(100);

void BM_QrLeastSquares(benchmark::State& state) {
  // The CR decode shape: n rows (units), n - s columns (survivors).
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto cols = n - n / 10;
  const auto a = random_matrix(n, cols, 13);
  const std::vector<double> b(n, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(coupon::linalg::lstsq(a, b));
  }
}
BENCHMARK(BM_QrLeastSquares)->Arg(50)->Arg(100)->Arg(200);

}  // namespace

BENCHMARK_MAIN();
