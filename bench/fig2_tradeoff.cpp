// Reproduces Fig. 2 of the paper: the tradeoff between the computational
// load r and the recovery threshold K for distributed GD with m = 100
// training examples across n = 100 workers.
//
// Four series, as in the paper:
//   * lower bound          K*(r) >= m/r                     (Theorem 1)
//   * proposed BCC         K_BCC = ceil(m/r) * H_{ceil(m/r)} (Eq. 2)
//   * simple randomized    K_rand ~ (m/r) log m              (Eq. 5)
//   * CR scheme            K_CR = m - r + 1                  (Eq. 7)
//
// The two randomized series are additionally validated by Monte Carlo
// (fresh placements per trial); the analytic and empirical columns should
// agree for BCC and bracket the approximation for the randomized scheme.
//
// Beyond the paper: --workers n emits the same tradeoff as a *simulated
// runtime* curve (mean K, L, and seconds/iteration on the EC2-shaped
// cluster model) at any n up to the million-worker regime the
// threshold-selection kernel unlocks (DESIGN.md §7.4) — the paper's
// Fig. 2 shape, but measured end to end instead of counted. CR joins the
// curve only at paper scale: its n x n coding matrix is quadratic in
// memory by construction. --quick shrinks trials and iterations for
// smoke runs.

#include <cstdio>
#include <memory>
#include <vector>

#include "core/core.hpp"
#include "core/scheme_registry.hpp"
#include "simulate/cluster_sim.hpp"
#include "simulate/experiment.hpp"
#include "stats/rng.hpp"
#include "util/util.hpp"

namespace {

double mc_bcc_threshold(std::size_t m, std::size_t r, std::size_t trials,
                        coupon::stats::Rng& rng) {
  // Plenty of workers so truncation at n is negligible, as in Theorem 1's
  // "sufficiently large n".
  const std::size_t batches = coupon::core::theory::bcc_batches(m, r);
  const std::size_t n = std::max<std::size_t>(batches * 20, 200);
  double total = 0.0;
  for (std::size_t t = 0; t < trials; ++t) {
    coupon::core::BccScheme scheme(n, m, r, false, rng);
    auto collector = scheme.make_collector();
    for (std::size_t i = 0; i < n && !collector->ready(); ++i) {
      collector->offer(i, scheme.message_meta(i), {});
    }
    total += static_cast<double>(collector->workers_heard());
  }
  return total / static_cast<double>(trials);
}

/// The simulated runtime-vs-redundancy curve at n = m = `workers`:
/// every registered scheme that fits the shape, across a ladder of
/// loads, measured by the selection kernel on the EC2 cluster model.
void print_simulated_curve(std::size_t workers, std::size_t iterations,
                           coupon::stats::Rng& rng) {
  namespace sim = coupon::simulate;
  const sim::ClusterConfig cluster = sim::ec2_cluster();

  std::printf("\nSimulated runtime vs redundancy (n = m = %zu, %zu "
              "iterations/point, EC2 cluster model)\n\n",
              workers, iterations);
  coupon::AsciiTable table({"scheme", "r", "K (mean)", "L (mean)",
                            "sec/iter", "comm frac"});

  // CR's coding matrix is n x n: paper scale only.
  const bool include_cr = workers <= 2000;
  std::vector<std::size_t> loads{2, 5, 10, 20, 40};

  auto add_point = [&](const char* name, std::size_t load) {
    coupon::core::SchemeConfig config;
    config.num_workers = workers;
    config.num_units = workers;
    config.load = load;
    const auto scheme =
        coupon::core::SchemeRegistry::instance().create(name, config, rng);
    sim::RunOptions options;
    options.iterations = iterations;
    options.record_trace = false;
    const sim::RunReport run = simulate_run(*scheme, cluster, options, rng);
    const double per_iter =
        run.total_time / static_cast<double>(iterations);
    table.add_row({name, std::to_string(load),
                   coupon::format_double(run.workers_heard.mean(), 1),
                   coupon::format_double(run.units_received.mean(), 1),
                   coupon::format_double(per_iter, 4),
                   coupon::format_double(
                       run.total_time > 0.0
                           ? run.total_comm_time / run.total_time
                           : 0.0,
                       3)});
  };

  add_point("uncoded", 1);  // the wait-for-all baseline (r = 1)
  for (std::size_t r : loads) {
    if (r > workers) {
      continue;
    }
    add_point("bcc", r);
    if (workers % r == 0) {
      add_point("fr", r);  // FR needs r | n
    }
    add_point("gc_cyclic", r);
    if (include_cr) {
      add_point("cr", r);
    }
  }
  std::fputs(table.render().c_str(), stdout);
  if (!include_cr) {
    std::printf("\n(cr omitted: its n x n coding matrix is quadratic in "
                "memory at n = %zu)\n", workers);
  }
}

}  // namespace

int main(int argc, char** argv) {
  coupon::CliFlags flags;
  flags.add_int("m", 100, "number of training examples (paper: 100)")
      .add_int("trials", 2000, "Monte Carlo trials per point")
      .add_int("seed", 2718, "PRNG seed")
      .add_int("workers", 0,
               "also emit the simulated runtime-vs-redundancy curve at "
               "n = m = this many workers (0 = analytic table only; try "
               "100000 for the large-n regime)")
      .add_bool("quick", false,
                "smoke mode: ~10x fewer Monte Carlo trials and simulated "
                "iterations");
  if (!flags.parse(argc, argv)) {
    return 1;
  }
  const auto m = static_cast<std::size_t>(flags.get_int("m"));
  const bool quick = flags.get_bool("quick");
  const auto trials = std::max<std::size_t>(
      1, static_cast<std::size_t>(flags.get_int("trials")) / (quick ? 10 : 1));
  const auto workers = static_cast<std::size_t>(flags.get_int("workers"));
  coupon::stats::Rng rng(static_cast<std::uint64_t>(flags.get_int("seed")));

  std::printf("Fig. 2 — recovery threshold K vs computational load r "
              "(m = n = %zu)\n\n", m);

  coupon::AsciiTable table({"r", "lower bound m/r", "BCC (Eq.2)",
                            "BCC (MC)", "randomized ~(m/r)log m",
                            "randomized (MC)", "CR m-r+1"});
  namespace th = coupon::core::theory;
  for (std::size_t r : {2u, 5u, 10u, 15u, 20u, 25u, 30u, 40u, 50u}) {
    if (r > m) {
      continue;
    }
    const double mc_bcc = mc_bcc_threshold(m, r, trials, rng);
    const double mc_rand =
        th::mc_simple_random_threshold(m, r, trials, rng);
    table.add_row({std::to_string(r),
                   coupon::format_double(th::k_lower_bound(m, r), 2),
                   coupon::format_double(th::k_bcc(m, r), 2),
                   coupon::format_double(mc_bcc, 2),
                   coupon::format_double(th::k_simple_random_approx(m, r), 2),
                   coupon::format_double(mc_rand, 2),
                   coupon::format_double(th::k_cyclic_repetition(m, r), 0)});
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf("\nPaper shape check: for moderate r the ordering is\n"
              "  lower bound < BCC < randomized < CR,\n"
              "with BCC within the H_{m/r} log-factor of the bound "
              "(Theorem 1).\n");

  if (workers > 0) {
    const std::size_t iterations =
        quick ? 10 : (workers > 10'000 ? 20 : 200);
    print_simulated_curve(workers, iterations, rng);
  }
  return 0;
}
