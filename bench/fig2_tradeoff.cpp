// Reproduces Fig. 2 of the paper: the tradeoff between the computational
// load r and the recovery threshold K for distributed GD with m = 100
// training examples across n = 100 workers.
//
// Four series, as in the paper:
//   * lower bound          K*(r) >= m/r                     (Theorem 1)
//   * proposed BCC         K_BCC = ceil(m/r) * H_{ceil(m/r)} (Eq. 2)
//   * simple randomized    K_rand ~ (m/r) log m              (Eq. 5)
//   * CR scheme            K_CR = m - r + 1                  (Eq. 7)
//
// The two randomized series are additionally validated by Monte Carlo
// (fresh placements per trial); the analytic and empirical columns should
// agree for BCC and bracket the approximation for the randomized scheme.

#include <cstdio>

#include "core/core.hpp"
#include "stats/rng.hpp"
#include "util/util.hpp"

namespace {

double mc_bcc_threshold(std::size_t m, std::size_t r, std::size_t trials,
                        coupon::stats::Rng& rng) {
  // Plenty of workers so truncation at n is negligible, as in Theorem 1's
  // "sufficiently large n".
  const std::size_t batches = coupon::core::theory::bcc_batches(m, r);
  const std::size_t n = std::max<std::size_t>(batches * 20, 200);
  double total = 0.0;
  for (std::size_t t = 0; t < trials; ++t) {
    coupon::core::BccScheme scheme(n, m, r, false, rng);
    auto collector = scheme.make_collector();
    for (std::size_t i = 0; i < n && !collector->ready(); ++i) {
      collector->offer(i, scheme.message_meta(i), {});
    }
    total += static_cast<double>(collector->workers_heard());
  }
  return total / static_cast<double>(trials);
}

}  // namespace

int main(int argc, char** argv) {
  coupon::CliFlags flags;
  flags.add_int("m", 100, "number of training examples (paper: 100)")
      .add_int("trials", 2000, "Monte Carlo trials per point")
      .add_int("seed", 2718, "PRNG seed");
  if (!flags.parse(argc, argv)) {
    return 1;
  }
  const auto m = static_cast<std::size_t>(flags.get_int("m"));
  const auto trials = static_cast<std::size_t>(flags.get_int("trials"));
  coupon::stats::Rng rng(static_cast<std::uint64_t>(flags.get_int("seed")));

  std::printf("Fig. 2 — recovery threshold K vs computational load r "
              "(m = n = %zu)\n\n", m);

  coupon::AsciiTable table({"r", "lower bound m/r", "BCC (Eq.2)",
                            "BCC (MC)", "randomized ~(m/r)log m",
                            "randomized (MC)", "CR m-r+1"});
  namespace th = coupon::core::theory;
  for (std::size_t r : {2u, 5u, 10u, 15u, 20u, 25u, 30u, 40u, 50u}) {
    if (r > m) {
      continue;
    }
    const double mc_bcc = mc_bcc_threshold(m, r, trials, rng);
    const double mc_rand =
        th::mc_simple_random_threshold(m, r, trials, rng);
    table.add_row({std::to_string(r),
                   coupon::format_double(th::k_lower_bound(m, r), 2),
                   coupon::format_double(th::k_bcc(m, r), 2),
                   coupon::format_double(mc_bcc, 2),
                   coupon::format_double(th::k_simple_random_approx(m, r), 2),
                   coupon::format_double(mc_rand, 2),
                   coupon::format_double(th::k_cyclic_repetition(m, r), 0)});
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf("\nPaper shape check: for moderate r the ordering is\n"
              "  lower bound < BCC < randomized < CR,\n"
              "with BCC within the H_{m/r} log-factor of the bound "
              "(Theorem 1).\n");
  return 0;
}
