// Reproduces Fig. 4 of the paper: total running time of the uncoded,
// cyclic repetition, and BCC schemes over 100 iterations of distributed
// Nesterov logistic regression, in the two EC2 scenarios
// (n = 50 / m = 50 batches and n = 100 / m = 100 batches, r = 10).
//
// The EC2 testbed is replaced by the discrete-event cluster simulator
// (DESIGN.md §2); absolute seconds depend on the calibration constants,
// but the scheme ranking and the headline speedup percentages are the
// reproduction targets (paper: BCC 85.4% / 69.9% faster in scenario one,
// 73.0% / 69.7% in scenario two).
//
// Built on the unified experiment driver: scenario/cluster setup and the
// scheme sweep are shared with table1 and table2.

#include <cstdio>

#include "driver/driver.hpp"
#include "simulate/experiment.hpp"
#include "util/util.hpp"

int main(int argc, char** argv) {
  coupon::CliFlags flags;
  flags.add_int("iterations", 100, "GD iterations per run (paper: 100)");
  if (!flags.parse(argc, argv)) {
    return 1;
  }

  using coupon::core::SchemeKind;
  const std::vector<SchemeKind> kinds = {SchemeKind::kUncoded,
                                         SchemeKind::kCyclicRepetition,
                                         SchemeKind::kBcc};

  std::printf("Fig. 4 — total running time, uncoded vs cyclic repetition "
              "vs BCC (simulated EC2 cluster)\n\n");

  for (const auto& scenario : {coupon::simulate::ec2_scenario_one(),
                               coupon::simulate::ec2_scenario_two()}) {
    auto config = coupon::driver::config_from_sim_scenario(scenario);
    config.iterations = static_cast<std::size_t>(flags.get_int("iterations"));
    const auto rows = coupon::driver::run_scheme_comparison(config, kinds);

    std::printf("scenario (n=%zu, m=%zu batches), %zu iterations:\n",
                config.num_workers, config.num_units, config.iterations);
    coupon::AsciiTable table({"scheme", "total running time (s)"});
    table.set_align(0, coupon::Align::kLeft);
    for (const auto& row : rows) {
      table.add_row({row.scheme, coupon::format_double(row.total_time, 3)});
    }
    std::fputs(table.render().c_str(), stdout);

    const auto& uncoded = rows[0];
    const auto& cr = rows[1];
    const auto& bcc = rows[2];
    std::printf("  BCC speedup vs uncoded: %s (paper: %s)\n",
                coupon::format_percent(
                    coupon::simulate::speedup_fraction(bcc, uncoded))
                    .c_str(),
                config.num_workers == 50 ? "85.4%" : "73.0%");
    std::printf("  BCC speedup vs cyclic repetition: %s (paper: %s)\n\n",
                coupon::format_percent(
                    coupon::simulate::speedup_fraction(bcc, cr))
                    .c_str(),
                config.num_workers == 50 ? "69.9%" : "69.7%");
  }
  return 0;
}
