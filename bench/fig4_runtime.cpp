// Reproduces Fig. 4 of the paper: total running time of the uncoded,
// cyclic repetition, and BCC schemes over 100 iterations of distributed
// Nesterov logistic regression, in the two EC2 scenarios
// (n = 50 / m = 50 batches and n = 100 / m = 100 batches, r = 10).
//
// The EC2 testbed is replaced by the discrete-event cluster simulator
// (DESIGN.md §2); absolute seconds depend on the calibration constants,
// but the scheme ranking and the headline speedup percentages are the
// reproduction targets (paper: BCC 85.4% / 69.9% faster in scenario one,
// 73.0% / 69.7% in scenario two).
//
// Built on the driver's SweepPlan: per paper scenario (each with its own
// canonical seed and cluster calibration), the scheme axis runs in
// parallel on the thread pool.

#include <cstdio>
#include <vector>

#include "driver/driver.hpp"
#include "driver/predict.hpp"
#include "driver/sweep.hpp"
#include "util/util.hpp"

int main(int argc, char** argv) {
  coupon::CliFlags flags;
  flags.add_int("iterations", 100, "GD iterations per run (paper: 100)");
  if (!flags.parse(argc, argv)) {
    return 1;
  }

  std::printf("Fig. 4 — total running time, uncoded vs cyclic repetition "
              "vs BCC (simulated EC2 cluster)\n\n");

  for (const auto& scenario : {coupon::simulate::ec2_scenario_one(),
                               coupon::simulate::ec2_scenario_two()}) {
    coupon::driver::SweepPlan plan;
    plan.base = coupon::driver::config_from_sim_scenario(scenario);
    plan.base.iterations =
        static_cast<std::size_t>(flags.get_int("iterations"));
    plan.base.record_trace = false;  // bar-chart summary only
    plan.schemes = {"uncoded", "cr", "bcc"};

    const auto records = coupon::driver::run_sweep(plan);
    const auto& uncoded = records[0];
    const auto& cr = records[1];
    const auto& bcc = records[2];

    std::printf("scenario (n=%zu, m=%zu batches), %zu iterations:\n",
                uncoded.num_workers, uncoded.num_units, uncoded.iterations);
    coupon::AsciiTable table(
        {"scheme", "total running time (s)", "predicted exact (s)"});
    table.set_align(0, coupon::Align::kLeft);
    for (const auto* record : {&uncoded, &cr, &bcc}) {
      // Zero-simulation oracle prediction for the same cell; "-" when
      // the scheme/scenario pair has no exact reduction.
      auto cell = plan.base;
      cell.scheme = record->scheme;
      cell.seed = record->seed;
      const auto prediction = coupon::driver::predict_cell(cell);
      table.add_row({record->scheme_display,
                     coupon::format_double(record->total_time, 3),
                     prediction.has_value()
                         ? coupon::format_double(
                               prediction->expected_time *
                                   static_cast<double>(record->iterations),
                               3)
                         : "-"});
    }
    std::fputs(table.render().c_str(), stdout);

    std::printf("  BCC speedup vs uncoded: %s (paper: %s)\n",
                coupon::format_percent(
                    coupon::driver::speedup_fraction(bcc, uncoded))
                    .c_str(),
                uncoded.num_workers == 50 ? "85.4%" : "73.0%");
    std::printf("  BCC speedup vs cyclic repetition: %s (paper: %s)\n\n",
                coupon::format_percent(
                    coupon::driver::speedup_fraction(bcc, cr))
                    .c_str(),
                uncoded.num_workers == 50 ? "69.9%" : "69.7%");
  }
  return 0;
}
