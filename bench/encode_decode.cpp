// Microbenchmarks for the coding overhead claim (Remark 3 / the
// "Simplicity" bullet): BCC's encode is a plain gradient sum and its
// decode a running sum, while CR's encode applies coding coefficients
// and its decode solves an n x (n-s) least-squares system per iteration.
// These benches quantify that gap as a function of n and r.

#include <benchmark/benchmark.h>

#include "core/core.hpp"
#include "data/synthetic.hpp"
#include "stats/rng.hpp"

namespace {

using namespace coupon;

struct Workload {
  data::SyntheticProblem problem;
  std::unique_ptr<core::PerExampleSource> source;
  std::vector<double> w;
};

Workload make_workload(std::size_t units, std::size_t features) {
  Workload wl;
  stats::Rng rng(17);
  data::SyntheticConfig config;
  config.num_features = features;
  wl.problem = data::generate_logreg(units, config, rng);
  wl.source = std::make_unique<core::PerExampleSource>(wl.problem.dataset);
  wl.w = std::vector<double>(features);
  for (auto& v : wl.w) {
    v = rng.normal();
  }
  return wl;
}

constexpr std::size_t kFeatures = 2000;

void BM_BccEncode(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto r = static_cast<std::size_t>(state.range(1));
  const auto wl = make_workload(n, kFeatures);
  stats::Rng rng(3);
  core::BccScheme scheme(n, n, r, true, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme.encode(0, *wl.source, wl.w));
  }
}
BENCHMARK(BM_BccEncode)->Args({50, 10})->Args({100, 10})->Args({100, 25});

void BM_CrEncode(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto r = static_cast<std::size_t>(state.range(1));
  const auto wl = make_workload(n, kFeatures);
  stats::Rng rng(3);
  core::CyclicRepetitionScheme scheme(n, r, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme.encode(0, *wl.source, wl.w));
  }
}
BENCHMARK(BM_CrEncode)->Args({50, 10})->Args({100, 10})->Args({100, 25});

/// Full collect+decode at the master, excluding the worker encodes
/// (messages are prepared outside the timed loop).
template <typename SchemeT>
void run_decode_benchmark(benchmark::State& state, const SchemeT& scheme,
                          const Workload& wl,
                          const std::vector<std::size_t>& order) {
  std::vector<comm::Message> messages;
  messages.reserve(order.size());
  for (std::size_t i : order) {
    messages.push_back(scheme.encode(i, *wl.source, wl.w));
  }
  std::vector<double> grad(kFeatures);
  for (auto _ : state) {
    auto collector = scheme.make_collector();
    for (std::size_t k = 0; k < order.size() && !collector->ready(); ++k) {
      collector->offer(order[k], messages[k].meta, messages[k].payload);
    }
    collector->decode_sum(grad);
    benchmark::DoNotOptimize(grad.data());
  }
}

void BM_BccCollectDecode(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto r = static_cast<std::size_t>(state.range(1));
  const auto wl = make_workload(n, kFeatures);
  stats::Rng rng(5);
  core::BccScheme scheme(n, n, r, true, rng);
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) {
    order[i] = i;
  }
  rng.shuffle(order);
  run_decode_benchmark(state, scheme, wl, order);
}
BENCHMARK(BM_BccCollectDecode)
    ->Args({50, 10})
    ->Args({100, 10})
    ->Args({100, 25});

void BM_CrCollectDecode(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto r = static_cast<std::size_t>(state.range(1));
  const auto wl = make_workload(n, kFeatures);
  stats::Rng rng(5);
  core::CyclicRepetitionScheme scheme(n, r, rng);
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) {
    order[i] = i;
  }
  rng.shuffle(order);
  run_decode_benchmark(state, scheme, wl, order);
}
BENCHMARK(BM_CrCollectDecode)
    ->Args({50, 10})
    ->Args({100, 10})
    ->Args({100, 25});

void BM_CrCodingMatrixConstruction(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto r = static_cast<std::size_t>(state.range(1));
  stats::Rng rng(7);
  for (auto _ : state) {
    core::CyclicRepetitionScheme scheme(n, r, rng);
    benchmark::DoNotOptimize(scheme.coding_matrix().data().data());
  }
}
BENCHMARK(BM_CrCodingMatrixConstruction)->Args({50, 10})->Args({100, 10});

}  // namespace

BENCHMARK_MAIN();
